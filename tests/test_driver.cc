/**
 * @file
 * Tests for the scenario driver itself: arrival delivery, service
 * trace recording, completion notification to the manager, utilization
 * grid coverage, and record_every thinning — using a scripted manager
 * so driver behaviour is isolated from Quasar's policies.
 */

#include <gtest/gtest.h>

#include "driver/scenario.hh"
#include "workload/factory.hh"
#include "workload/queueing.hh"

using namespace quasar;
using workload::Workload;

namespace
{

/** A manager that places every submission on a fixed server. */
class ScriptedManager : public driver::ClusterManager
{
  public:
    ScriptedManager(sim::Cluster &cluster,
                    workload::WorkloadRegistry &registry, ServerId where,
                    int cores)
        : cluster_(cluster), registry_(registry), where_(where),
          cores_(cores) {}

    void onSubmit(WorkloadId id, double t) override
    {
        submissions.push_back({id, t});
        Workload &w = registry_.get(id);
        sim::TaskShare share;
        share.workload = id;
        share.cores = cores_;
        share.memory_gb = 8.0;
        share.caused = w.causedPressure(t, cores_);
        cluster_.server(where_).place(share);
        w.last_progress_update = t;
    }
    void onTick(double) override { ++ticks; }
    void onCompletion(WorkloadId id, double t) override
    {
        completions.push_back({id, t});
    }
    std::string name() const override { return "scripted"; }

    std::vector<std::pair<WorkloadId, double>> submissions;
    std::vector<std::pair<WorkloadId, double>> completions;
    int ticks = 0;

  private:
    sim::Cluster &cluster_;
    workload::WorkloadRegistry &registry_;
    ServerId where_;
    int cores_;
};

} // namespace

TEST(Driver, ArrivalsDeliveredAtTheirTimes)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    ScriptedManager mgr(cluster, registry, 36, 2);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(1)};
    WorkloadId a = registry.add(f.singleNodeJob("a", "mix"));
    WorkloadId b = registry.add(f.singleNodeJob("b", "mix"));
    drv.addArrival(a, 25.0);
    drv.addArrival(b, 5.0);
    drv.run(100.0);
    ASSERT_EQ(mgr.submissions.size(), 2u);
    // Delivered in time order regardless of insertion order.
    EXPECT_EQ(mgr.submissions[0].first, b);
    EXPECT_DOUBLE_EQ(mgr.submissions[0].second, 5.0);
    EXPECT_EQ(mgr.submissions[1].first, a);
    EXPECT_DOUBLE_EQ(mgr.submissions[1].second, 25.0);
    EXPECT_DOUBLE_EQ(registry.get(a).arrival_time, 25.0);
}

TEST(Driver, CompletionInterpolatedWithinTick)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    ScriptedManager mgr(cluster, registry, 36, 4);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(2)};
    Workload job = f.singleNodeJob("j", "specjbb");
    WorkloadId id = registry.add(job);
    drv.addArrival(id, 0.0);
    drv.run(100000.0);
    const Workload &w = registry.get(id);
    ASSERT_TRUE(w.completed);
    // Completion time = arrival + work / (constant) rate, to within
    // numerical tolerance — even though progress is tick-integrated.
    workload::PerfOracle oracle(cluster, registry);
    // Re-place to recompute the rate it ran at.
    sim::TaskShare share;
    share.workload = id;
    share.cores = 4;
    share.memory_gb = 8.0;
    cluster.server(36).place(share);
    double rate = oracle.currentRate(w, 0.0);
    EXPECT_NEAR(w.completion_time, w.total_work / rate, 1e-6);
    // Completion callback carried the interpolated time.
    ASSERT_EQ(mgr.completions.size(), 1u);
    EXPECT_DOUBLE_EQ(mgr.completions[0].second, w.completion_time);
}

TEST(Driver, ServiceTraceConsistentWithQueueingModel)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    ScriptedManager mgr(cluster, registry, 36, 16);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(3)};
    Workload mc = f.memcachedService(
        "m", 1e5, 2e-4, 32.0,
        std::make_shared<tracegen::FlatLoad>(1e5));
    WorkloadId id = registry.add(mc);
    drv.addArrival(id, 0.0);
    drv.run(500.0);
    const driver::ServiceTrace *tr = drv.serviceTrace(id);
    ASSERT_NE(tr, nullptr);
    ASSERT_GT(tr->offered_qps.size(), 10u);
    workload::PerfOracle oracle(cluster, registry);
    double cap = oracle.serviceCapacityQps(registry.get(id), 100.0);
    for (size_t i = 0; i < tr->offered_qps.size(); ++i) {
        EXPECT_DOUBLE_EQ(tr->offered_qps.valueAt(i), 1e5);
        EXPECT_NEAR(tr->served_qps.valueAt(i),
                    workload::servedQps(1e5, cap), 1e-6);
        EXPECT_NEAR(tr->qos_fraction.valueAt(i),
                    workload::fractionMeetingQos(1e5, cap, 2e-4),
                    1e-9);
    }
    // Batch traces do not exist.
    WorkloadId other = registry.add(f.singleNodeJob("s", "mix"));
    EXPECT_EQ(drv.serviceTrace(other), nullptr);
}

TEST(Driver, RecordEveryThinsSeries)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    ScriptedManager mgr(cluster, registry, 36, 2);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0,
                                                    .record_every = 5});
    drv.run(1000.0); // 100 ticks
    EXPECT_EQ(mgr.ticks, 100);
    EXPECT_EQ(drv.aggCpuUsed().size(), 20u);
}

TEST(Driver, UnplacedBatchMakesNoProgress)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;

    // A manager that never places anything.
    class NullManager : public driver::ClusterManager
    {
      public:
        void onSubmit(WorkloadId, double) override {}
        void onTick(double) override {}
        void onCompletion(WorkloadId, double) override {}
        std::string name() const override { return "null"; }
    } null_mgr;

    driver::ScenarioDriver drv(cluster, registry, null_mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(4)};
    WorkloadId id = registry.add(f.singleNodeJob("s", "mix"));
    drv.addArrival(id, 0.0);
    drv.run(1000.0);
    EXPECT_FALSE(registry.get(id).completed);
    EXPECT_DOUBLE_EQ(registry.get(id).work_done, 0.0);
    EXPECT_DOUBLE_EQ(drv.meanNormalizedPerf(id), 0.0);
}
