/**
 * @file
 * Tests for the classification engine: seeding, estimate shapes,
 * accuracy on structured workloads, exhaustive mode, history growth
 * and bounding, feedback, and decision-time expectations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/classifier.hh"
#include "stats/summary.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::Classifier;
using core::ClassifierConfig;
using core::WorkloadEstimate;
using workload::Workload;

namespace
{

struct World
{
    std::vector<sim::Platform> catalog = sim::localPlatforms();
    profiling::Profiler profiler{catalog, {}};
    profiling::Profiler truth_prof;
    workload::WorkloadFactory factory{stats::Rng(71)};
    stats::Rng rng{72};

    World()
        : truth_prof(catalog,
                     [] {
                         profiling::ProfilerConfig c;
                         c.noise_sigma = 0.0;
                         return c;
                     }())
    {
    }

    std::vector<Workload> seeds()
    {
        std::vector<Workload> out;
        for (int i = 0; i < 6; ++i)
            out.push_back(factory.hadoopJob(
                "seed", factory.rng().uniform(5.0, 200.0)));
        for (int i = 0; i < 4; ++i) {
            double q = factory.rng().uniform(5e4, 3e5);
            out.push_back(factory.memcachedService(
                "seed", q, 2e-4, 40.0,
                std::make_shared<tracegen::FlatLoad>(q)));
        }
        static const char *fams[] = {"spec-int", "parsec", "minebench",
                                     "specjbb"};
        for (int i = 0; i < 8; ++i)
            out.push_back(factory.singleNodeJob("seed", fams[i % 4]));
        return out;
    }
};

} // namespace

TEST(Classifier, SeedingPopulatesAllMatrices)
{
    World w;
    Classifier clf(w.profiler, {}, 1);
    EXPECT_EQ(clf.seedRows(), 0u);
    clf.seedOffline(w.seeds(), 0.0);
    // 18 seeds contribute scale-up + het + interference rows, and
    // distributed ones a scale-out row.
    EXPECT_GE(clf.seedRows(), 18u * 3);
}

TEST(Classifier, EstimateShapesAreComplete)
{
    World w;
    Classifier clf(w.profiler, {}, 1);
    clf.seedOffline(w.seeds(), 0.0);
    Workload job = w.factory.hadoopJob("j", 60.0);
    auto data = w.profiler.profile(job, 0.0, w.rng);
    WorkloadEstimate est = clf.classify(job, data);

    auto grid = workload::scaleUpGrid(w.catalog[9], job.type);
    EXPECT_EQ(est.scale_up_perf.size(), grid.size());
    EXPECT_EQ(est.platform_factor.size(), w.catalog.size());
    EXPECT_EQ(est.scale_out_speedup.size(),
              workload::scaleOutGrid().size());
    EXPECT_DOUBLE_EQ(est.scale_out_speedup[0], 1.0);
    EXPECT_DOUBLE_EQ(est.platform_factor[est.profiling_platform], 1.0);
    for (double v : est.scale_up_perf)
        EXPECT_GE(v, 0.0);
    for (size_t i = 0; i < interference::kNumSources; ++i) {
        EXPECT_GE(est.tolerated[i], 0.0);
        EXPECT_LE(est.tolerated[i], 1.0);
        EXPECT_GE(est.caused_per_core[i], 0.0);
    }
    EXPECT_EQ(est.type, workload::WorkloadType::Analytics);
    EXPECT_TRUE(est.cross_perf.empty());
}

TEST(Classifier, HistoryGrowsAndIsBounded)
{
    World w;
    ClassifierConfig cfg;
    cfg.max_history_rows = 10;
    Classifier clf(w.profiler, cfg, 1);
    clf.seedOffline(w.seeds(), 0.0);
    for (int i = 0; i < 30; ++i) {
        Workload job = w.factory.singleNodeJob("s", "mix");
        auto data = w.profiler.profile(job, 0.0, w.rng);
        clf.classify(job, data);
    }
    // Online rows per matrix are capped at 10; generic scale-up, het,
    // interference (and no scale-out for single-node).
    EXPECT_LE(clf.onlineRows(), 3u * 10);
}

TEST(Classifier, PlatformFactorsTrackSpeedOrdering)
{
    World w;
    Classifier clf(w.profiler, {}, 1);
    clf.seedOffline(w.seeds(), 0.0);
    stats::Samples a_factor, j_factor;
    for (int i = 0; i < 8; ++i) {
        Workload job = w.factory.hadoopJob("j", 50.0);
        auto data = w.profiler.profile(job, 0.0, w.rng);
        auto est = clf.classify(job, data);
        a_factor.add(est.platform_factor[0]);
        j_factor.add(est.platform_factor[9]);
    }
    // Platform A must classify well below J on average.
    EXPECT_LT(a_factor.mean(), 0.85 * j_factor.mean());
}

TEST(Classifier, EstimatesBeatNaiveFlatGuess)
{
    // The CF estimate of the scale-up row must beat assuming the
    // reference value everywhere (the no-information baseline).
    World w;
    Classifier clf(w.profiler, {}, 1);
    clf.seedOffline(w.seeds(), 0.0);
    double cf_err = 0.0, flat_err = 0.0;
    int n = 0;
    for (int i = 0; i < 10; ++i) {
        Workload job = w.factory.hadoopJob("j",
                                           w.rng.uniform(5.0, 150.0));
        auto data = w.profiler.profile(job, 0.0, w.rng);
        auto est = clf.classify(job, data);
        stats::Rng z(1);
        auto truth = w.truth_prof.denseScaleUpRow(job, 0.0, z);
        for (size_t c = 0; c < truth.size(); ++c) {
            cf_err += std::fabs(est.scale_up_perf[c] - truth[c]) /
                      std::max(truth[c], 1e-9);
            flat_err += std::fabs(data.reference_value - truth[c]) /
                        std::max(truth[c], 1e-9);
            ++n;
        }
    }
    EXPECT_LT(cf_err / n, 0.6 * flat_err / n);
}

TEST(Classifier, InterferenceErrorsSmall)
{
    World w;
    Classifier clf(w.profiler, {}, 1);
    clf.seedOffline(w.seeds(), 0.0);
    stats::Samples err;
    for (int i = 0; i < 10; ++i) {
        Workload job = w.factory.hadoopJob("j", 50.0);
        auto data = w.profiler.profile(job, 0.0, w.rng);
        auto est = clf.classify(job, data);
        auto ref = profiling::Profiler::referenceConfig(w.catalog[9],
                                                        job.type);
        auto truth = w.truth_prof.denseInterferenceRow(job, 0.0, ref);
        for (size_t c = 0; c < truth.size(); ++c)
            err.add(std::fabs(est.tolerated[c] - truth[c]));
    }
    EXPECT_LT(err.mean(), 0.12);
}

TEST(Classifier, ExhaustiveModeProducesCrossEstimates)
{
    World w;
    ClassifierConfig cfg;
    cfg.exhaustive = true;
    Classifier clf(w.profiler, cfg, 1);
    clf.seedOffline(w.seeds(), 0.0);
    Workload job = w.factory.singleNodeJob("s", "parsec");
    auto data = w.profiler.profile(job, 0.0, w.rng);
    auto est = clf.classify(job, data);
    auto grid = workload::scaleUpGrid(w.catalog[9], job.type);
    EXPECT_EQ(est.cross_perf.size(), w.catalog.size() * grid.size());
    // nodePerf must read the cross matrix directly.
    EXPECT_DOUBLE_EQ(est.nodePerf(3, 5),
                     est.cross_perf[3 * grid.size() + 5]);
}

TEST(Classifier, FeedbackOverwritesColumnAndHistory)
{
    World w;
    Classifier clf(w.profiler, {}, 1);
    clf.seedOffline(w.seeds(), 0.0);
    Workload job = w.factory.hadoopJob("j", 50.0);
    auto data = w.profiler.profile(job, 0.0, w.rng);
    auto est = clf.classify(job, data);
    size_t before = clf.onlineRows();
    clf.feedbackScaleUp(est, 3, 42.0);
    EXPECT_DOUBLE_EQ(est.scale_up_perf[3], 42.0);
    EXPECT_EQ(clf.onlineRows(), before + 1);
}

TEST(Estimate, ScaleOutInterpolationMonotoneFamilies)
{
    WorkloadEstimate est;
    est.scale_out_grid = {1, 2, 4, 8};
    est.scale_out_speedup = {1.0, 1.9, 3.5, 6.0};
    EXPECT_DOUBLE_EQ(est.scaleOutSpeedupAt(1), 1.0);
    EXPECT_DOUBLE_EQ(est.scaleOutSpeedupAt(8), 6.0);
    double s3 = est.scaleOutSpeedupAt(3);
    EXPECT_GT(s3, 1.9);
    EXPECT_LT(s3, 3.5);
    // Beyond the grid: clamps to the last value.
    EXPECT_DOUBLE_EQ(est.scaleOutSpeedupAt(100), 6.0);
}

TEST(Estimate, InterferenceMultiplierThresholds)
{
    WorkloadEstimate est;
    est.tolerated.fill(0.5);
    auto quiet = interference::zeroVector();
    EXPECT_DOUBLE_EQ(est.interferenceMultiplier(quiet), 1.0);
    auto hot = interference::zeroVector();
    hot[2] = 0.9;
    double m = est.interferenceMultiplier(hot, 1.5);
    EXPECT_NEAR(m, 1.0 - 1.5 * 0.4, 1e-12);
}

TEST(Estimate, JobPerfUsesEfficiency)
{
    WorkloadEstimate est;
    est.scale_out_grid = {1, 2, 4};
    est.scale_out_speedup = {1.0, 1.6, 2.8};
    std::vector<double> two(2, 5.0);
    EXPECT_NEAR(est.jobPerf(two), 10.0 * 1.6 / 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(est.jobPerf({}), 0.0);
}
