/**
 * @file
 * Overload control & graceful degradation (core/overload.hh): the
 * detector state machine (hysteresis, dwell, no-flap), priority-aware
 * defer/shed gating, brownout apply/restore, PI anti-windup, the
 * admission aging guard (flash crowd + idle drains the queue), and
 * the replay contract — bit-identical shedding/scaling decisions
 * across scheduler modes and re-replays over a seed sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "churn/churn.hh"
#include "core/manager.hh"
#include "core/overload.hh"
#include "driver/scenario.hh"
#include "tracegen/load_pattern.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::OverloadConfig;
using core::OverloadState;
using workload::Workload;

namespace
{

/** Overload config with thresholds small test clusters can reach. */
OverloadConfig
testOverloadConfig()
{
    OverloadConfig oc;
    oc.enabled = true;
    oc.util_pressured = 0.85;
    oc.util_overloaded = 0.97;
    oc.depth_pressured = 2;
    oc.depth_overloaded = 4;
    oc.min_dwell_s = 20.0;
    oc.defer_base_s = 10.0;
    oc.defer_max_s = 40.0;
    oc.shed_deadline_s = 1e6; // most tests never shed
    oc.aging_limit_s = 100.0;
    return oc;
}

struct World
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarManager mgr;
    driver::ScenarioDriver drv;
    workload::WorkloadFactory factory{stats::Rng(2024)};

    explicit World(core::QuasarConfig cfg = {})
        : mgr(cluster, registry, cfg),
          drv(cluster, registry, mgr,
              driver::DriverConfig{.tick_s = 10.0})
    {
        workload::WorkloadFactory seeder{stats::Rng(4242)};
        mgr.seedOffline(seeder, 20);
    }

    WorkloadId submit(Workload w, double t)
    {
        WorkloadId id = registry.add(std::move(w));
        drv.addArrival(id, t);
        return id;
    }

    /** Fill the cluster with relaxed-target analytics jobs. */
    std::vector<WorkloadId> fillWithAnalytics(size_t n, double t)
    {
        std::vector<WorkloadId> ids;
        for (size_t i = 0; i < n; ++i) {
            Workload job = factory.hadoopJob(
                "fill-" + std::to_string(i), 40.0);
            job.target =
                workload::WorkloadFactory::defaultAnalyticsTarget(
                    job, cluster.catalog()[9], 4);
            ids.push_back(submit(std::move(job), t + double(i)));
        }
        return ids;
    }
};

} // namespace

// ---------------------------------------------------------------
// Detector state machine
// ---------------------------------------------------------------

TEST(OverloadDetector, UpgradesImmediatelyEvenSkippingLevels)
{
    core::OverloadDetector det(testOverloadConfig());
    EXPECT_EQ(det.state(), OverloadState::Normal);
    // One bad sample jumps straight Normal -> Overloaded.
    EXPECT_EQ(det.update(0.0, 0.99, 0), OverloadState::Overloaded);
    EXPECT_EQ(det.transitions(), 1u);
}

TEST(OverloadDetector, HysteresisBandPreventsFlapping)
{
    OverloadConfig oc = testOverloadConfig();
    core::OverloadDetector det(oc);
    det.update(0.0, 0.99, 0); // -> Overloaded
    // Hover just below the entry threshold but inside the exit band
    // (exit needs util < 0.97 * 0.9 = 0.873): dwell long since
    // elapsed, yet the state must hold with zero extra transitions.
    for (int i = 1; i <= 50; ++i)
        EXPECT_EQ(det.update(double(i) * 10.0, 0.90, 0),
                  OverloadState::Overloaded);
    EXPECT_EQ(det.transitions(), 1u);
}

TEST(OverloadDetector, DowngradesOneLevelPerUpdateAfterDwell)
{
    OverloadConfig oc = testOverloadConfig();
    core::OverloadDetector det(oc);
    det.update(0.0, 0.99, 0); // -> Overloaded
    // Metrics collapse, but the downgrade is conservative: one level
    // per update, each gated on min_dwell in the current state.
    EXPECT_EQ(det.update(5.0, 0.1, 0), OverloadState::Overloaded)
        << "dwell 5s < 20s must hold the state";
    EXPECT_EQ(det.update(25.0, 0.1, 0), OverloadState::Pressured);
    EXPECT_EQ(det.update(35.0, 0.1, 0), OverloadState::Pressured)
        << "dwell restarts per state";
    EXPECT_EQ(det.update(50.0, 0.1, 0), OverloadState::Normal);
    EXPECT_EQ(det.transitions(), 3u);
    // Time-in-state accounting covers the whole observed window.
    const stats::StateDwell &dw = det.dwell();
    double total = dw.secondsIn(0) + dw.secondsIn(1) + dw.secondsIn(2);
    EXPECT_NEAR(total, 50.0, 1e-9);
    EXPECT_NEAR(dw.secondsIn(size_t(OverloadState::Overloaded)), 25.0,
                1e-9);
}

TEST(OverloadDetector, DepthProbeAloneTriggers)
{
    core::OverloadDetector det(testOverloadConfig());
    EXPECT_EQ(det.update(0.0, 0.1, 3), OverloadState::Pressured);
    EXPECT_EQ(det.update(10.0, 0.1, 9), OverloadState::Overloaded);
}

// ---------------------------------------------------------------
// Defer / shed gating policy
// ---------------------------------------------------------------

TEST(OverloadController, ShedFirstPriorityOrdering)
{
    OverloadConfig oc = testOverloadConfig();
    oc.shed_deadline_s = 100.0;
    core::OverloadController ctl(oc);

    Workload be;
    be.type = workload::WorkloadType::SingleNode;
    be.best_effort = true;
    Workload batch;
    batch.type = workload::WorkloadType::SingleNode;
    Workload svc;
    svc.type = workload::WorkloadType::LatencyService;

    ctl.observe(0.0, 0.90, 0); // Pressured
    EXPECT_TRUE(ctl.shouldDefer(be));
    EXPECT_FALSE(ctl.shouldDefer(batch))
        << "primary batch is only gated while Overloaded";
    EXPECT_FALSE(ctl.shouldDefer(svc));
    EXPECT_FALSE(ctl.shouldShed(be, 1e9))
        << "shedding requires Overloaded, not just Pressured";

    ctl.observe(10.0, 0.99, 0); // Overloaded
    EXPECT_TRUE(ctl.shouldDefer(be));
    EXPECT_TRUE(ctl.shouldDefer(batch));
    EXPECT_FALSE(ctl.shouldDefer(svc));
    // Deadline-aware shed: best-effort at the deadline, batch at
    // twice the deadline, services never.
    EXPECT_FALSE(ctl.shouldShed(be, 99.0));
    EXPECT_TRUE(ctl.shouldShed(be, 100.0));
    EXPECT_FALSE(ctl.shouldShed(batch, 150.0));
    EXPECT_TRUE(ctl.shouldShed(batch, 200.0));
    EXPECT_FALSE(ctl.shouldShed(svc, 1e9));
    EXPECT_FALSE(ctl.shouldShed(be, -1.0))
        << "unknown queue age must never shed";
}

// ---------------------------------------------------------------
// Scaling policies
// ---------------------------------------------------------------

TEST(ScalingPolicy, ReactiveStepsTowardSetpointAndClamps)
{
    OverloadConfig oc;
    core::ReactiveStepPolicy p(oc);
    double b = 1.0;
    b = p.update(0.5, 30.0, b);
    EXPECT_DOUBLE_EQ(b, 1.25);
    b = p.update(0.01, 30.0, b); // inside deadband: hold
    EXPECT_DOUBLE_EQ(b, 1.25);
    for (int i = 0; i < 20; ++i)
        b = p.update(1.0, 30.0, b);
    EXPECT_DOUBLE_EQ(b, oc.boost_max);
    b = p.update(-1.0, 30.0, b);
    EXPECT_DOUBLE_EQ(b, oc.boost_max - oc.reactive_step);
}

TEST(ScalingPolicy, PiAntiWindupRecoversImmediately)
{
    OverloadConfig oc; // kp=0.8 ki=0.05 boost_max=3
    core::PiPolicy pi(oc);
    double b = 1.0;
    // A long saturation episode: huge persistent error. The output
    // rails at boost_max and the conditional integration must freeze
    // the integral at the reachable range instead of winding up
    // (naive integration would accumulate ki*e*dt = 3.0 per step).
    for (int i = 0; i < 50; ++i)
        b = pi.update(2.0, 30.0, b);
    EXPECT_DOUBLE_EQ(b, oc.boost_max);
    EXPECT_LE(pi.integral(), oc.boost_max - 1.0 + 1e-12);
    // The moment the error reverses, the output must leave the rail
    // in ONE step — that is the whole point of anti-windup.
    double recovered = pi.update(-1.0, 30.0, b);
    EXPECT_LT(recovered, oc.boost_max);
}

TEST(ScalingPolicy, FactoryHonorsKind)
{
    OverloadConfig oc;
    oc.policy = core::ScalingPolicyKind::None;
    EXPECT_EQ(core::makeScalingPolicy(oc), nullptr);
    oc.policy = core::ScalingPolicyKind::Reactive;
    EXPECT_NE(dynamic_cast<core::ReactiveStepPolicy *>(
                  core::makeScalingPolicy(oc).get()),
              nullptr);
    oc.policy = core::ScalingPolicyKind::Pi;
    EXPECT_NE(dynamic_cast<core::PiPolicy *>(
                  core::makeScalingPolicy(oc).get()),
              nullptr);
}

// ---------------------------------------------------------------
// Admission aging guard
// ---------------------------------------------------------------

TEST(AdmissionQueue, AgingGuardOverridesBackoffTimer)
{
    core::AdmissionQueue q;
    q.setAgingLimit(30.0);
    q.enqueueWithBackoff(7, 0.0, 100.0, 400.0); // not_before = 100
    EXPECT_DOUBLE_EQ(q.enqueuedAt(7), 0.0);
    EXPECT_TRUE(q.drainForRetry(10.0).empty())
        << "younger than the age limit: backoff timer rules";
    auto due = q.drainForRetry(50.0);
    ASSERT_EQ(due.size(), 1u) << "age 50 >= limit 30 forces the retry";
    EXPECT_EQ(due[0], WorkloadId(7));
    EXPECT_DOUBLE_EQ(q.enqueuedAt(7), 0.0)
        << "mid-retry entries keep their wait start";
}

// ---------------------------------------------------------------
// End-to-end: shedding, accounting, brownout, queue drain
// ---------------------------------------------------------------

TEST(OverloadE2E, ShedsBestEffortFirstAndAccountsEveryArrival)
{
    core::QuasarConfig cfg;
    cfg.overload = testOverloadConfig();
    cfg.overload.shed_deadline_s = 60.0;
    cfg.overload.aging_limit_s = 1e6; // isolate the shed path
    World w(cfg);

    // Saturate: relaxed-target analytics reserve the whole cluster
    // (primaries are placed "as close as possible", grabbing every
    // core), so the utilization probe trips Overloaded; later
    // best-effort and batch arrivals are deferred into the queue and
    // age toward their shed deadlines.
    auto fill = w.fillWithAnalytics(24, 1.0);
    std::vector<WorkloadId> be_ids, batch_ids;
    for (int i = 0; i < 6; ++i)
        be_ids.push_back(
            w.submit(w.factory.bestEffortJob("be-" + std::to_string(i)),
                     60.0));
    for (int i = 0; i < 3; ++i)
        batch_ids.push_back(w.submit(
            w.factory.singleNodeJob("batch-" + std::to_string(i),
                                    "parsec"),
            60.0));
    w.drv.run(400.0);

    const core::QuasarStats &st = w.mgr.stats();
    ASSERT_GE(st.shed, be_ids.size())
        << "queued best-effort work past the deadline must shed";
    EXPECT_GE(st.overload_deferred, 1u);
    EXPECT_GE(w.mgr.overload().fractionIn(OverloadState::Overloaded),
              0.1);

    // Shed-first ordering between the two groups that queued at the
    // same instant (t=60): every best-effort shed strictly precedes
    // every primary-batch shed (deadline vs 2x deadline). Fill jobs
    // that failed placement outright queued earlier and shed on their
    // own 2x clock, so they are excluded from the ordering check.
    double last_be_shed = -1.0, first_batch_shed = 1e18;
    for (WorkloadId id : be_ids) {
        const Workload &j = w.registry.get(id);
        if (j.shed)
            last_be_shed = std::max(last_be_shed, j.completion_time);
    }
    for (WorkloadId id : batch_ids) {
        const Workload &j = w.registry.get(id);
        if (j.shed) {
            first_batch_shed =
                std::min(first_batch_shed, j.completion_time);
        }
    }
    if (last_be_shed >= 0.0 && first_batch_shed < 1e18) {
        EXPECT_LT(last_be_shed, first_batch_shed);
    }

    // Every arrival ends admitted, completed, or accounted-shed; the
    // per-workload shed flags must sum exactly to the stats counter
    // (nothing double-counted, nothing lost).
    size_t shed = 0, terminal_or_active = 0;
    std::vector<WorkloadId> all = be_ids;
    all.insert(all.end(), batch_ids.begin(), batch_ids.end());
    all.insert(all.end(), fill.begin(), fill.end());
    for (WorkloadId id : all) {
        const Workload &j = w.registry.get(id);
        switch (driver::outcomeOf(j)) {
        case driver::WorkloadOutcome::Shed:
            ++shed;
            EXPECT_TRUE(j.killed) << "shed must imply killed";
            ++terminal_or_active;
            break;
        case driver::WorkloadOutcome::Completed:
        case driver::WorkloadOutcome::Departed:
        case driver::WorkloadOutcome::Active:
            ++terminal_or_active;
            break;
        }
    }
    EXPECT_EQ(shed, st.shed);
    EXPECT_EQ(terminal_or_active, all.size());
}

TEST(OverloadE2E, BrownoutDegradesAndRestoresBestEffort)
{
    core::QuasarConfig cfg;
    cfg.overload = testOverloadConfig();
    World w(cfg);

    // A best-effort analytics job placed on the empty cluster gets a
    // multi-core allocation — the brownout victim. The flood below is
    // all best-effort too: best-effort placements never evict other
    // best-effort work (may_evict is !best_effort), so the victim
    // stays placed and only the controller ever touches its shares.
    Workload be = w.factory.hadoopJob("be-victim", 600.0);
    be.target = workload::WorkloadFactory::defaultAnalyticsTarget(
        be, w.cluster.catalog()[9], 6);
    be.best_effort = true;
    WorkloadId victim = w.submit(std::move(be), 1.0);

    w.drv.run(30.0);
    {
        const Workload &v = w.registry.get(victim);
        ASSERT_FALSE(v.brownout_active);
        ASSERT_FALSE(w.cluster.serversHosting(victim).empty());
        int cores = 0;
        for (ServerId sid : w.cluster.serversHosting(victim))
            cores += w.cluster.server(sid).share(victim)->cores;
        ASSERT_GT(cores, int(w.cluster.serversHosting(victim).size()))
            << "victim must hold >1 core somewhere for the test to "
               "mean anything";
    }

    // Best-effort flood: enough filler to reserve the cluster and
    // pile the rest into the admission queue, tripping Overloaded on
    // both probes. The placed victim is browned out to brownout_cores
    // per share.
    std::vector<WorkloadId> fill;
    for (int i = 0; i < 300; ++i)
        fill.push_back(
            w.submit(w.factory.bestEffortJob("q-" + std::to_string(i)),
                     40.0));
    w.drv.run(140.0);
    {
        const Workload &v = w.registry.get(victim);
        ASSERT_TRUE(v.brownout_active);
        EXPECT_TRUE(v.brownout_ever);
        EXPECT_GE(w.mgr.stats().brownouts, 1u);
        for (ServerId sid : w.cluster.serversHosting(victim))
            EXPECT_EQ(w.cluster.server(sid).share(victim)->cores,
                      cfg.overload.brownout_cores);
    }

    // Pressure clears: the flood departs (placed and queued alike),
    // the queue drains, the detector dwells its way back to Normal,
    // and the controller restores the saved allocation.
    for (WorkloadId id : fill)
        w.drv.killWorkload(id, 150.0);
    w.drv.run(600.0);
    {
        const Workload &v = w.registry.get(victim);
        ASSERT_FALSE(v.completed) << "victim should still be running";
        ASSERT_FALSE(v.killed);
        EXPECT_FALSE(v.brownout_active);
        EXPECT_GE(w.mgr.stats().brownout_restores, 1u);
        int cores = 0;
        for (ServerId sid : w.cluster.serversHosting(victim))
            cores += w.cluster.server(sid).share(victim)->cores;
        EXPECT_GT(cores, int(w.cluster.serversHosting(victim).size()));
        EXPECT_EQ(w.mgr.overload().state(), OverloadState::Normal);
        EXPECT_TRUE(w.mgr.admission().empty());
    }
}

TEST(OverloadE2E, FlashCrowdThenIdleDrainsQueueToEmpty)
{
    core::QuasarConfig cfg;
    cfg.overload = testOverloadConfig();
    World w(cfg);

    // Flash crowd: saturate, then a burst of best-effort arrivals
    // that all queue behind the saturated cluster.
    auto fill = w.fillWithAnalytics(24, 1.0);
    std::vector<WorkloadId> burst;
    for (int i = 0; i < 8; ++i)
        burst.push_back(
            w.submit(w.factory.bestEffortJob("fc-" + std::to_string(i)),
                     40.0));
    w.drv.run(100.0);
    EXPECT_GE(w.mgr.admission().size(), 1u);

    // The crowd passes (fill departs) and no new work arrives: the
    // aging guard must walk every deferred entry back through a real
    // scheduling attempt — the queue drains to EMPTY, nothing
    // starves in backoff forever.
    for (WorkloadId id : fill)
        w.drv.killWorkload(id, 110.0);
    w.drv.run(900.0);
    EXPECT_TRUE(w.mgr.admission().empty())
        << "idle cluster with queued work means starvation";
    for (WorkloadId id : burst) {
        const Workload &j = w.registry.get(id);
        bool running = !w.cluster.serversHosting(id).empty();
        EXPECT_TRUE(j.completed || j.shed || running)
            << "burst job " << id << " neither ran nor was accounted";
    }
    EXPECT_EQ(w.mgr.overload().state(), OverloadState::Normal);
}

TEST(OverloadE2E, AutoscalerBoostsUnderperformingService)
{
    core::QuasarConfig cfg;
    cfg.overload = testOverloadConfig();
    cfg.overload.scale_interval_s = 20.0;
    World w(cfg);

    auto load = std::make_shared<tracegen::FluctuatingLoad>(
        250.0, 50.0, 3600.0);
    Workload svc = w.factory.webService("svc", 300.0, 0.1, load);
    WorkloadId id = w.submit(std::move(svc), 1.0);
    w.drv.run(600.0);

    EXPECT_GE(w.mgr.stats().autoscale_updates, 1u);
    // The boost stays inside the configured clamp and the service
    // keeps its placement.
    double boost = w.mgr.overload().boostFor(id);
    EXPECT_GE(boost, cfg.overload.boost_min);
    EXPECT_LE(boost, cfg.overload.boost_max);
    EXPECT_FALSE(w.cluster.serversHosting(id).empty());
}

// ---------------------------------------------------------------
// Replay contract: decisions bit-identical across modes and seeds
// ---------------------------------------------------------------

namespace
{

struct ReplayResult
{
    uint64_t placement_hash = 0xCBF29CE484222325ULL;
    uint64_t decision_hash = 0;
    size_t shed = 0;
    size_t deferred = 0;
    size_t arrivals = 0;
    size_t accounted = 0; ///< completed + departed + shed + active.
};

void
foldCluster(const sim::Cluster &cluster, uint64_t &h)
{
    auto fold = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ULL;
    };
    for (size_t s = 0; s < cluster.size(); ++s) {
        const sim::Server &srv = cluster.server(ServerId(s));
        fold(uint64_t(s) << 32 | uint64_t(srv.coresAllocated()));
        for (const sim::TaskShare &t : srv.tasks()) {
            fold(uint64_t(t.workload));
            fold(uint64_t(t.cores));
        }
    }
}

/** One seeded churn run with overload control on, in one mode. */
ReplayResult
replayRun(uint64_t seed, bool dirty, bool full)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;

    core::QuasarConfig cfg;
    cfg.seed = 99;
    cfg.scheduler.dirty_set = dirty;
    cfg.scheduler.full_rescan = full;
    cfg.overload = testOverloadConfig();
    cfg.overload.depth_pressured = 4;
    cfg.overload.depth_overloaded = 8;
    cfg.overload.shed_deadline_s = 60.0;
    cfg.overload.min_dwell_s = 20.0;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(4242)};
    mgr.seedOffline(seeder, 16);

    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});

    churn::ChurnConfig ccfg;
    ccfg.seed = seed;
    ccfg.arrival_rate_per_s = 0.2;
    ccfg.horizon_s = 300.0;
    ccfg.mix = {0.35, 0.15, 0.15, 0.35};
    // Diurnal swell + flash crowd, as a unit-rate multiplier.
    ccfg.rate_pattern = std::make_shared<tracegen::PiecewiseLoad>(
        std::vector<std::pair<double, double>>{{0.0, 0.6},
                                               {90.0, 1.0},
                                               {140.0, 6.0},
                                               {200.0, 6.0},
                                               {240.0, 0.8},
                                               {300.0, 0.8}});
    churn::ChurnEngine churn_engine(ccfg);
    churn_engine.install(cluster, registry, drv);

    ReplayResult r;
    drv.setTickHook(
        [&](double) { foldCluster(cluster, r.placement_hash); });
    drv.run(ccfg.horizon_s);

    r.decision_hash = mgr.overload().decisionHash();
    r.shed = mgr.stats().shed;
    r.deferred = mgr.stats().overload_deferred;
    r.arrivals = churn_engine.plan().size();
    // Every arrival ends in exactly one outcome bucket; their sum is
    // the arrival count ("no workload is ever lost"), shed implies
    // killed, and the stats counter matches the per-workload flags.
    size_t shed_flags = 0;
    for (const churn::ChurnItem &item : churn_engine.plan()) {
        const Workload &j = registry.get(item.id);
        switch (driver::outcomeOf(j)) {
        case driver::WorkloadOutcome::Shed:
            ++shed_flags;
            EXPECT_TRUE(j.killed) << "shed must be terminal";
            [[fallthrough]];
        case driver::WorkloadOutcome::Completed:
        case driver::WorkloadOutcome::Departed:
        case driver::WorkloadOutcome::Active:
            ++r.accounted;
            break;
        }
    }
    EXPECT_EQ(shed_flags, r.shed);
    return r;
}

} // namespace

TEST(OverloadReplay, DecisionsBitIdenticalAcrossModesAndReplays)
{
    // 20-seed sweep x {dirty, cached, full_rescan} x re-replay: the
    // shedding/scaling decision hash and the placement hash must be
    // bit-identical everywhere — the replay contract of DESIGN.md.
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        ReplayResult base = replayRun(1000 + seed, true, false);
        ReplayResult cached = replayRun(1000 + seed, false, false);
        ReplayResult rescan = replayRun(1000 + seed, false, true);
        ReplayResult again = replayRun(1000 + seed, true, false);

        EXPECT_EQ(base.placement_hash, cached.placement_hash)
            << "seed " << seed << ": dirty vs cached placements";
        EXPECT_EQ(base.placement_hash, rescan.placement_hash)
            << "seed " << seed << ": dirty vs full_rescan placements";
        EXPECT_EQ(base.placement_hash, again.placement_hash)
            << "seed " << seed << ": re-replay placements";
        EXPECT_EQ(base.decision_hash, cached.decision_hash)
            << "seed " << seed << ": dirty vs cached decisions";
        EXPECT_EQ(base.decision_hash, rescan.decision_hash)
            << "seed " << seed << ": dirty vs full_rescan decisions";
        EXPECT_EQ(base.decision_hash, again.decision_hash)
            << "seed " << seed << ": re-replay decisions";
        EXPECT_EQ(base.shed, cached.shed);
        EXPECT_EQ(base.deferred, rescan.deferred);
        EXPECT_EQ(base.accounted, base.arrivals);
    }
}

TEST(OverloadReplay, DisabledControllerLeavesDecisionsUntouched)
{
    // The master switch must be a true no-op: identical placements
    // with and without the overload module compiled into the path,
    // and a decision hash equal to the FNV-1a offset basis (nothing
    // ever folded).
    auto run = [](bool enabled) {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        core::QuasarConfig cfg;
        cfg.overload.enabled = enabled;
        cfg.overload.depth_pressured = 1; // aggressive when enabled
        cfg.overload.depth_overloaded = 2;
        core::QuasarManager mgr(cluster, registry, cfg);
        workload::WorkloadFactory seeder{stats::Rng(4242)};
        mgr.seedOffline(seeder, 16);
        driver::ScenarioDriver drv(
            cluster, registry, mgr,
            driver::DriverConfig{.tick_s = 10.0});
        churn::ChurnConfig ccfg;
        ccfg.seed = 7;
        ccfg.arrival_rate_per_s = 0.1;
        ccfg.horizon_s = 300.0;
        churn::ChurnEngine eng(ccfg);
        eng.install(cluster, registry, drv);
        uint64_t h = 0xCBF29CE484222325ULL;
        drv.setTickHook([&](double) { foldCluster(cluster, h); });
        drv.run(ccfg.horizon_s);
        return std::make_pair(h, mgr.overload().decisionHash());
    };
    auto off = run(false);
    EXPECT_EQ(off.second, 0xCBF29CE484222325ULL);
    // An enabled controller on a light stream that never pressures
    // the cluster is not required to match; only off must be inert.
    // (The placement hash of the off run is the legacy behavior.)
    auto off2 = run(false);
    EXPECT_EQ(off.first, off2.first);
}
