/**
 * @file
 * The sharded parallel decision path (src/shard/, DESIGN.md §14):
 * partitioner purity/stability edges (more shards than servers, empty
 * shards after a fault storm, re-priming mid-stream), the replay
 * contract — K=1 reproduces the unsharded scheduler's placements and
 * decision hash bit-exactly, DeterministicMerge reproduces them at
 * ANY K, and a fixed (K, seed) yields identical hashes across runs
 * and across the workers' dirty_set/cached index modes (20-seed
 * sweep) — the Omega-style Optimistic commit protocol (determinism,
 * induced conflicts, bounded retry, retry-budget exhaustion), and the
 * WorkerPool barrier with real threads (the TSan suite runs these
 * same tests under -fsanitize=thread).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/classifier.hh"
#include "core/scheduler.hh"
#include "profiling/profiler.hh"
#include "shard/shard.hh"
#include "shard/sharded_scheduler.hh"
#include "shard/worker_pool.hh"
#include "sim/cluster.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::Allocation;
using core::GreedyScheduler;
using core::SchedulerConfig;
using core::WorkloadEstimate;
using shard::CommitMode;
using shard::Partitioner;
using shard::ShardConfig;
using shard::ShardedScheduler;
using workload::Workload;

namespace
{

void
expectSameAllocation(const std::optional<Allocation> &a,
                     const std::optional<Allocation> &b,
                     const std::string &ctx)
{
    ASSERT_EQ(a.has_value(), b.has_value()) << ctx;
    if (!a)
        return;
    EXPECT_EQ(a->degraded, b->degraded) << ctx;
    // Bitwise, not near: the replay contract is exact reproduction.
    EXPECT_EQ(a->predicted_perf, b->predicted_perf) << ctx;
    ASSERT_EQ(a->nodes.size(), b->nodes.size()) << ctx;
    for (size_t i = 0; i < a->nodes.size(); ++i) {
        EXPECT_EQ(a->nodes[i].server, b->nodes[i].server) << ctx;
        EXPECT_EQ(a->nodes[i].scale_up_col, b->nodes[i].scale_up_col)
            << ctx;
        EXPECT_EQ(a->nodes[i].cores, b->nodes[i].cores) << ctx;
        EXPECT_EQ(a->nodes[i].socket, b->nodes[i].socket) << ctx;
    }
    ASSERT_EQ(a->evictions.size(), b->evictions.size()) << ctx;
    for (size_t i = 0; i < a->evictions.size(); ++i)
        EXPECT_EQ(a->evictions[i], b->evictions[i]) << ctx;
}

/** Classifier world (the journal/ranking test idiom), seeded so two
 *  instances built with the same seed evolve identically. */
struct ShardWorld
{
    sim::Cluster cluster;
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler;
    core::Classifier clf;
    workload::WorkloadFactory factory;
    stats::Rng rng;

    explicit ShardWorld(uint64_t seed = 31,
                        sim::Cluster c = sim::Cluster::localCluster())
        : cluster(std::move(c)), profiler{cluster.catalog(), {}},
          clf{profiler, {}, 3}, factory{stats::Rng(seed)}, rng{seed + 1}
    {
        std::vector<Workload> seeds;
        for (int i = 0; i < 5; ++i)
            seeds.push_back(factory.hadoopJob(
                "seed", factory.rng().uniform(5.0, 150.0)));
        static const char *fams[] = {"spec-int", "parsec", "specjbb",
                                     "mix"};
        for (int i = 0; i < 6; ++i)
            seeds.push_back(factory.singleNodeJob("seed", fams[i % 4]));
        clf.seedOffline(seeds, 0.0);
    }

    std::pair<WorkloadId, WorkloadEstimate> make(Workload w)
    {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return {id, clf.classify(registry.get(id), data)};
    }

    void apply(WorkloadId id, const Allocation &alloc)
    {
        Workload &w = registry.get(id);
        for (const auto &[sid, victim] : alloc.evictions)
            cluster.server(sid).remove(victim);
        for (const auto &node : alloc.nodes) {
            sim::TaskShare share;
            share.workload = id;
            share.cores = node.cores;
            share.memory_gb = node.memory_gb;
            share.storage_gb = w.storage_gb_per_node;
            share.caused = w.causedPressure(0.0, node.cores);
            share.best_effort = w.best_effort;
            cluster.server(node.server).place(share);
        }
    }
};

/** One pre-generated mutation-stream step, replayable against any
 *  number of twin worlds so their histories stay identical as long as
 *  their decisions do. */
struct StreamOp
{
    int kind = 0;       ///< 0-1 arrival, 2 degrade, 3 down/up, 4 spike
    double target = 0.0;///< arrival perf target
    int priority = 0;   ///< arrival priority (pre-registration)
    bool may_evict = false;
    size_t srv = 0;     ///< server operand for kinds 2-4
    double level = 0.0; ///< degrade fraction
    bool clear = false; ///< kind 4: also clear the spike
};

std::vector<StreamOp>
makeStream(uint64_t seed, size_t cluster_size, int steps)
{
    stats::Rng rng(seed);
    std::vector<StreamOp> ops;
    ops.reserve(size_t(steps));
    for (int i = 0; i < steps; ++i) {
        StreamOp op;
        op.kind = int(rng.uniformInt(0, 4));
        op.target = rng.uniform(10.0, 80.0);
        op.priority = int(rng.uniformInt(0, 3));
        op.may_evict = rng.uniformInt(0, 1) == 1;
        op.srv = size_t(rng.uniformInt(0, int64_t(cluster_size) - 1));
        op.level = rng.uniform(0.1, 0.9);
        op.clear = rng.uniformInt(0, 1) == 0;
        ops.push_back(op);
    }
    return ops;
}

/** Apply one step to a world; arrivals are decided by `alloc` and
 *  committed. Returns the arrival's decision (nullopt for non-
 *  arrival steps) so twin runs can be compared step for step. */
template <typename AllocFn>
std::optional<Allocation>
stepWorld(ShardWorld &w, const StreamOp &op, AllocFn &&alloc)
{
    switch (op.kind) {
    case 0:
    case 1: {
        Workload job = w.factory.hadoopJob("job", op.target);
        job.priority = op.priority;
        auto [id, est] = w.make(std::move(job));
        auto a = alloc(w.registry.get(id), est, op.target, op.may_evict);
        if (a)
            w.apply(id, *a);
        return a;
    }
    case 2:
        w.cluster.server(ServerId(op.srv)).degrade(op.level);
        return std::nullopt;
    case 3: {
        sim::Server &s = w.cluster.server(ServerId(op.srv));
        if (s.available())
            s.markDown();
        else
            s.recover();
        return std::nullopt;
    }
    default: {
        interference::IVector poke = interference::zeroVector();
        poke[2] = 0.4;
        w.cluster.server(ServerId(op.srv)).injectPressure(poke);
        if (op.clear)
            w.cluster.server(ServerId(op.srv)).clearInjectedPressure();
        return std::nullopt;
    }
    }
}

/** Drive a whole stream through a sharded world, returning the final
 *  decision hash (and optionally every decision). */
uint64_t
runShardedStream(uint64_t world_seed, const std::vector<StreamOp> &ops,
                 ShardConfig cfg,
                 std::vector<std::optional<Allocation>> *out = nullptr)
{
    ShardWorld w(world_seed);
    ShardedScheduler sharded(w.cluster, SchedulerConfig{}, cfg,
                             &w.registry);
    for (const StreamOp &op : ops) {
        auto a = stepWorld(w, op,
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return sharded.allocate(job, est, target,
                                                       nullptr,
                                                       may_evict);
                           });
        if (out)
            out->push_back(std::move(a));
    }
    return sharded.decisionHash();
}

} // namespace

// ---------------------------------------------------------------------
// Partitioner edges
// ---------------------------------------------------------------------

TEST(Shard, PartitionerIsPureStableAndGrowOnly)
{
    Partitioner p(4, 0xFEED);
    EXPECT_TRUE(p.sync(40));
    EXPECT_FALSE(p.sync(40)) << "same size must not rebuild";
    std::vector<uint32_t> before = p.table();

    // Catalog growth: existing servers keep their shard bit for bit
    // (the hash is a pure function of (id, seed, K)).
    EXPECT_TRUE(p.sync(100));
    for (size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(p.table()[i], before[i]) << "server " << i
                                           << " moved on growth";
    for (size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(p.shardOf(ServerId(i)),
                  Partitioner::shardHash(ServerId(i), 0xFEED, 4));
        EXPECT_LT(p.table()[i], 4u);
    }

    // A different seed is a different partition (overwhelmingly).
    Partitioner q(4, 0xBEEF);
    q.sync(100);
    EXPECT_NE(q.table(), p.table());

    // Every shard id is in range and the counts conserve servers.
    std::vector<size_t> counts = p.memberCounts();
    size_t total = 0;
    for (size_t c : counts)
        total += c;
    EXPECT_EQ(total, 100u);
}

TEST(Shard, MoreShardsThanServersLeavesShardsEmptyButIdentical)
{
    // K = 64 over 40 servers: some shards are necessarily empty, and
    // the merge must shrug — placements stay bit-identical to the
    // unsharded scheduler.
    std::vector<StreamOp> ops = makeStream(7, 40, 24);

    ShardWorld plain(41);
    GreedyScheduler unsharded(plain.cluster, SchedulerConfig{},
                              &plain.registry);

    ShardWorld sharded_world(41);
    ShardConfig cfg;
    cfg.shards = 64;
    ShardedScheduler sharded(sharded_world.cluster, SchedulerConfig{},
                             cfg, &sharded_world.registry);

    std::vector<size_t> counts = sharded.partitioner().memberCounts();
    EXPECT_TRUE(std::find(counts.begin(), counts.end(), 0u) !=
                counts.end())
        << "64 shards over 40 servers should leave empty shards";

    for (size_t i = 0; i < ops.size(); ++i) {
        auto a = stepWorld(plain, ops[i],
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return unsharded.allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        auto b = stepWorld(sharded_world, ops[i],
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return sharded.allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        expectSameAllocation(a, b, "step " + std::to_string(i));
        if (::testing::Test::HasFailure())
            return;
    }
}

TEST(Shard, EmptyShardsAfterFaultStormStayBitIdentical)
{
    // Knock out every member of two shards (a rack/PDU-shaped storm
    // aligned with the partition), then keep scheduling: the dead
    // shards contribute nothing and the merge still reproduces the
    // unsharded placements.
    ShardConfig cfg;
    cfg.shards = 8;

    ShardWorld plain(43);
    GreedyScheduler unsharded(plain.cluster, SchedulerConfig{},
                              &plain.registry);
    ShardWorld sharded_world(43);
    ShardedScheduler sharded(sharded_world.cluster, SchedulerConfig{},
                             cfg, &sharded_world.registry);

    // One decision first so the partition table exists and workers
    // are primed before the storm.
    std::vector<StreamOp> warm = makeStream(8, 40, 4);
    for (const StreamOp &op : warm) {
        auto a = stepWorld(plain, op,
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return unsharded.allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        auto b = stepWorld(sharded_world, op,
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return sharded.allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        expectSameAllocation(a, b, "warm step");
    }

    const Partitioner &part = sharded.partitioner();
    size_t downed = 0;
    for (size_t i = 0; i < 40; ++i) {
        uint32_t k = part.shardOf(ServerId(i));
        if (k == 2 || k == 5) {
            if (plain.cluster.server(ServerId(i)).available())
                plain.cluster.server(ServerId(i)).markDown();
            if (sharded_world.cluster.server(ServerId(i)).available())
                sharded_world.cluster.server(ServerId(i)).markDown();
            ++downed;
        }
    }
    ASSERT_GT(downed, 0u) << "shards 2 and 5 had no members at all";

    std::vector<StreamOp> ops = makeStream(9, 40, 20);
    for (size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == 3)
            continue; // keep the storm's shards dead for the test
        auto a = stepWorld(plain, ops[i],
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return unsharded.allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        auto b = stepWorld(sharded_world, ops[i],
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return sharded.allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        expectSameAllocation(a, b, "post-storm step " +
                                       std::to_string(i));
        if (::testing::Test::HasFailure())
            return;
    }
}

TEST(Shard, RePrimedSchedulerMidStreamKeepsHashIdentity)
{
    // A ShardedScheduler born mid-stream (fresh journal cursors, full
    // re-prime against a cluster with history — the catalog-change /
    // restart case) must continue the stream with placements
    // bit-identical to the unsharded referee's.
    std::vector<StreamOp> ops = makeStream(10, 40, 30);

    ShardWorld plain(47);
    GreedyScheduler unsharded(plain.cluster, SchedulerConfig{},
                              &plain.registry);
    ShardWorld sharded_world(47);
    ShardConfig cfg;
    cfg.shards = 4;
    auto first = std::make_unique<ShardedScheduler>(
        sharded_world.cluster, SchedulerConfig{}, cfg,
        &sharded_world.registry);

    std::unique_ptr<ShardedScheduler> current = std::move(first);
    for (size_t i = 0; i < ops.size(); ++i) {
        if (i == ops.size() / 2) {
            // Mid-stream re-prime: throw the primed instance away.
            current = std::make_unique<ShardedScheduler>(
                sharded_world.cluster, SchedulerConfig{}, cfg,
                &sharded_world.registry);
        }
        auto a = stepWorld(plain, ops[i],
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return unsharded.allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        auto b = stepWorld(sharded_world, ops[i],
                           [&](const Workload &job,
                               const WorkloadEstimate &est,
                               double target, bool may_evict) {
                               return current->allocate(
                                   job, est, target, nullptr, may_evict);
                           });
        expectSameAllocation(a, b, "step " + std::to_string(i));
        if (::testing::Test::HasFailure())
            return;
    }
}

// ---------------------------------------------------------------------
// Replay contract: merge identity and the (K, seed) hash sweep
// ---------------------------------------------------------------------

TEST(Shard, MergeCommitMatchesUnshardedAtAnyK)
{
    std::vector<StreamOp> ops = makeStream(5, 40, 30);
    for (uint32_t K : {1u, 2u, 3u, 4u, 7u}) {
        ShardWorld plain(37);
        GreedyScheduler unsharded(plain.cluster, SchedulerConfig{},
                                  &plain.registry);
        ShardWorld sharded_world(37);
        ShardConfig cfg;
        cfg.shards = K;
        ShardedScheduler sharded(sharded_world.cluster,
                                 SchedulerConfig{}, cfg,
                                 &sharded_world.registry);
        for (size_t i = 0; i < ops.size(); ++i) {
            auto a = stepWorld(
                plain, ops[i],
                [&](const Workload &job, const WorkloadEstimate &est,
                    double target, bool may_evict) {
                    return unsharded.allocate(job, est, target, nullptr,
                                              may_evict);
                });
            auto b = stepWorld(
                sharded_world, ops[i],
                [&](const Workload &job, const WorkloadEstimate &est,
                    double target, bool may_evict) {
                    return sharded.allocate(job, est, target, nullptr,
                                            may_evict);
                });
            expectSameAllocation(a, b,
                                 "K=" + std::to_string(K) + " step " +
                                     std::to_string(i));
            if (::testing::Test::HasFailure())
                return;
        }
        EXPECT_GT(sharded.stats().merge_commits, 0u);
        EXPECT_EQ(sharded.stats().optimistic_commits, 0u);
    }
}

TEST(Shard, KOneReproducesUnshardedDecisionHash)
{
    std::vector<StreamOp> ops = makeStream(6, 40, 24);
    for (CommitMode mode :
         {CommitMode::DeterministicMerge, CommitMode::Optimistic}) {
        // The referee: the unsharded scheduler's decisions, folded
        // with shard id 0 — the decision-hash definition unsharded
        // runs use.
        ShardWorld plain(53);
        GreedyScheduler unsharded(plain.cluster, SchedulerConfig{},
                                  &plain.registry);
        uint64_t expected = shard::kDecisionHashBasis;
        WorkloadId last_wid = kInvalidWorkload;
        for (const StreamOp &op : ops) {
            auto a = stepWorld(
                plain, op,
                [&](const Workload &job, const WorkloadEstimate &est,
                    double target, bool may_evict) {
                    last_wid = job.id;
                    return unsharded.allocate(job, est, target, nullptr,
                                              may_evict);
                });
            if (a)
                for (const auto &n : a->nodes)
                    expected = shard::foldDecision(expected, last_wid,
                                                   n.socket, 0);
        }

        ShardConfig cfg;
        cfg.shards = 1;
        cfg.commit = mode;
        std::vector<std::optional<Allocation>> got;
        uint64_t hash = runShardedStream(53, ops, cfg, &got);
        EXPECT_EQ(hash, expected)
            << "K=1 decision hash diverged in mode "
            << int(mode);
    }
}

TEST(Shard, ReplayContractTwentySeedSweep)
{
    // 20 (K, seed) points; at each, the decision hash must be
    // identical across (a) a re-run, and (b) the workers'
    // dirty_set/cached index modes.
    std::vector<StreamOp> ops = makeStream(12, 40, 12);
    for (int s = 0; s < 20; ++s) {
        ShardConfig cfg;
        cfg.shards = 1 + uint32_t(s % 5);
        cfg.seed = 0x1234 + uint64_t(s) * 0x9E3779B9;
        cfg.dirty_set = true;

        uint64_t h_dirty = runShardedStream(61, ops, cfg);
        uint64_t h_again = runShardedStream(61, ops, cfg);
        EXPECT_EQ(h_dirty, h_again)
            << "hash not reproducible across runs at sweep point " << s;

        ShardConfig cached = cfg;
        cached.dirty_set = false;
        uint64_t h_cached = runShardedStream(61, ops, cached);
        EXPECT_EQ(h_dirty, h_cached)
            << "dirty/cached worker modes diverged at sweep point "
            << s;
        if (::testing::Test::HasFailure())
            return;
    }
}

// ---------------------------------------------------------------------
// Optimistic (Omega-style) commit protocol
// ---------------------------------------------------------------------

TEST(Shard, OptimisticIsDeterministicForFixedKSeed)
{
    std::vector<StreamOp> ops = makeStream(14, 40, 20);
    ShardConfig cfg;
    cfg.shards = 4;
    cfg.commit = CommitMode::Optimistic;

    std::vector<std::optional<Allocation>> run1, run2;
    uint64_t h1 = runShardedStream(67, ops, cfg, &run1);
    uint64_t h2 = runShardedStream(67, ops, cfg, &run2);
    EXPECT_EQ(h1, h2);
    ASSERT_EQ(run1.size(), run2.size());
    for (size_t i = 0; i < run1.size(); ++i)
        expectSameAllocation(run1[i], run2[i],
                             "optimistic step " + std::to_string(i));
}

TEST(Shard, OptimisticConflictRetriesThenCommits)
{
    ShardWorld w(71);
    ShardConfig cfg;
    cfg.shards = 4;
    cfg.commit = CommitMode::Optimistic;
    ShardedScheduler sharded(w.cluster, SchedulerConfig{}, cfg,
                             &w.registry);

    // First attempt's validation must fail: the hook (which runs
    // between proposal argmax and validation) bumps every server's
    // change epoch once. The retry re-replays the journal, proposes
    // against fresh state, and commits.
    int fired = 0;
    sharded.setCommitHookForTest([&] {
        if (fired++ > 0)
            return;
        interference::IVector poke = interference::zeroVector();
        poke[1] = 0.1;
        for (size_t s = 0; s < w.cluster.size(); ++s) {
            w.cluster.server(ServerId(s)).injectPressure(poke);
            w.cluster.server(ServerId(s)).clearInjectedPressure();
        }
    });

    auto [id, est] = w.make(w.factory.hadoopJob("vip", 50.0));
    auto a = sharded.allocate(w.registry.get(id), est, 50.0, nullptr,
                              false);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(sharded.stats().commit_conflicts, 1u);
    EXPECT_EQ(sharded.stats().commit_retries, 1u);
    EXPECT_EQ(sharded.stats().optimistic_commits, 1u);
    EXPECT_GE(fired, 2);
}

TEST(Shard, OptimisticRetryBudgetExhaustionAborts)
{
    ShardWorld w(73);
    ShardConfig cfg;
    cfg.shards = 4;
    cfg.commit = CommitMode::Optimistic;
    cfg.max_commit_retries = 1;
    ShardedScheduler sharded(w.cluster, SchedulerConfig{}, cfg,
                             &w.registry);

    // Every round conflicts: the transaction must abort after the
    // bounded retries, not spin.
    sharded.setCommitHookForTest([&] {
        interference::IVector poke = interference::zeroVector();
        poke[1] = 0.1;
        for (size_t s = 0; s < w.cluster.size(); ++s) {
            w.cluster.server(ServerId(s)).injectPressure(poke);
            w.cluster.server(ServerId(s)).clearInjectedPressure();
        }
    });

    auto [id, est] = w.make(w.factory.hadoopJob("doomed", 50.0));
    auto a = sharded.allocate(w.registry.get(id), est, 50.0, nullptr,
                              false);
    EXPECT_FALSE(a.has_value());
    EXPECT_EQ(sharded.stats().commit_conflicts, 2u); // initial + retry
    EXPECT_EQ(sharded.stats().commit_retries, 1u);
    EXPECT_EQ(sharded.stats().optimistic_commits, 0u);
}

// ---------------------------------------------------------------------
// WorkerPool and real-thread equivalence (the TSan targets)
// ---------------------------------------------------------------------

TEST(Shard, WorkerPoolRunsEveryTaskExactlyOnceWithRealThreads)
{
    shard::WorkerPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);

    // Several batches through the same pool: each task marks its own
    // slot (disjoint writes — the sharded refresh pattern) and bumps
    // a shared atomic; the barrier means both are complete on return.
    for (int batch = 0; batch < 5; ++batch) {
        std::atomic<int> ran{0};
        std::vector<int> slot(16, 0);
        std::vector<std::function<void()>> tasks;
        for (size_t i = 0; i < slot.size(); ++i)
            tasks.push_back([&, i] {
                slot[i] += 1;
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        pool.runBatch(tasks);
        EXPECT_EQ(ran.load(), 16) << "batch " << batch;
        for (size_t i = 0; i < slot.size(); ++i)
            EXPECT_EQ(slot[i], 1)
                << "task " << i << " ran a wrong number of times";
    }
}

TEST(Shard, WorkerPoolInlineModeRunsInIndexOrder)
{
    for (unsigned threads : {0u, 1u}) {
        shard::WorkerPool pool(threads);
        EXPECT_EQ(pool.threads(), 0u) << "≤1 must mean inline";
        std::vector<size_t> order;
        std::vector<std::function<void()>> tasks;
        for (size_t i = 0; i < 8; ++i)
            tasks.push_back([&, i] { order.push_back(i); });
        pool.runBatch(tasks);
        ASSERT_EQ(order.size(), 8u);
        for (size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(order[i], i);
    }
}

TEST(Shard, ThreadedMergeMatchesInlineExecution)
{
    // The replay contract is thread-count independent: the same
    // stream through a threads=3 instance and a threads=1 (inline)
    // instance must produce identical placements and hashes. (In
    // verification builds both serialize; under TSan this is the test
    // that actually races the per-shard phase.)
    std::vector<StreamOp> ops = makeStream(16, 40, 20);
    ShardConfig inline_cfg;
    inline_cfg.shards = 4;
    inline_cfg.threads = 1;
    ShardConfig threaded_cfg = inline_cfg;
    threaded_cfg.threads = 3;

    for (CommitMode mode :
         {CommitMode::DeterministicMerge, CommitMode::Optimistic}) {
        inline_cfg.commit = mode;
        threaded_cfg.commit = mode;
        std::vector<std::optional<Allocation>> a, b;
        uint64_t ha = runShardedStream(79, ops, inline_cfg, &a);
        uint64_t hb = runShardedStream(79, ops, threaded_cfg, &b);
        EXPECT_EQ(ha, hb) << "mode " << int(mode);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            expectSameAllocation(a[i], b[i],
                                 "mode " + std::to_string(int(mode)) +
                                     " step " + std::to_string(i));
    }
}
