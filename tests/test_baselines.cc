/**
 * @file
 * Tests for the baseline managers: the reservation-error model and
 * reservation sizing, least-loaded placement, the Paragon
 * assignment-only manager, the auto-scaling policy, and the framework
 * self-scheduler — plus comparative sanity (Quasar beats LL on a
 * shared scenario).
 */

#include <gtest/gtest.h>

#include "baselines/autoscale.hh"
#include "baselines/framework_scheduler.hh"
#include "baselines/paragon.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using namespace quasar::baselines;
using workload::Workload;

TEST(ReservationModel, RatioDistributionMatchesFig1d)
{
    tracegen::ReservationModel model;
    stats::Rng rng(5);
    int under = 0, right = 0, over = 0;
    double max_ratio = 0.0, min_ratio = 1e9;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double r = model.sampleRatio(rng);
        max_ratio = std::max(max_ratio, r);
        min_ratio = std::min(min_ratio, r);
        if (r < 0.9)
            ++under;
        else if (r <= 1.1)
            ++right;
        else
            ++over;
    }
    EXPECT_NEAR(double(under) / n, 0.2, 0.03);
    // 70% draw from the over-sized branch; a sliver of them lands
    // within 1.1x (mild padding), so ~63% exceed it.
    EXPECT_NEAR(double(over) / n, 0.63, 0.04);
    EXPECT_LE(max_ratio, 10.0);
    EXPECT_GE(min_ratio, 1.0 / 5.0 - 1e-9);
}

TEST(ReservationModel, AppliedToCoresAndMemory)
{
    tracegen::ReservationModel model;
    stats::Rng rng(6);
    EXPECT_GE(model.reservedCores(4, rng), 1);
    EXPECT_GE(model.reservedMemoryGb(8.0, rng), 0.5);
}

TEST(Reservations, TrueNeedScalesWithTarget)
{
    auto catalog = sim::localPlatforms();
    workload::WorkloadFactory f{stats::Rng(7)};
    Workload small = f.hadoopJob("s", 10.0);
    small.target = workload::PerformanceTarget::completionTime(
        10000.0, small.total_work);
    Workload big = small;
    big.target = workload::PerformanceTarget::completionTime(
        small.total_work / (20.0 * small.target.rate),
        small.total_work);
    Reservation rs = trueNeed(small, catalog);
    Reservation rb = trueNeed(big, catalog);
    EXPECT_GE(rb.nodes, rs.nodes);
}

TEST(Reservations, ServiceSizedForQpsTarget)
{
    auto catalog = sim::localPlatforms();
    workload::WorkloadFactory f{stats::Rng(8)};
    Workload mc = f.memcachedService(
        "m", 8e5, 2e-4, 100.0,
        std::make_shared<tracegen::FlatLoad>(8e5));
    Reservation r = trueNeed(mc, catalog);
    EXPECT_GE(r.nodes, 2);
}

TEST(Reservations, LeastLoadedPlacementSpreads)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    workload::WorkloadFactory f{stats::Rng(9)};
    Workload w1 = f.singleNodeJob("a", "mix");
    Workload w2 = f.singleNodeJob("b", "mix");
    WorkloadId id1 = registry.add(w1);
    WorkloadId id2 = registry.add(w2);
    Reservation res{1, 2, 2.0};
    auto s1 = placeLeastLoaded(cluster, registry.get(id1), 0.0, res,
                               false);
    auto s2 = placeLeastLoaded(cluster, registry.get(id2), 0.0, res,
                               false);
    ASSERT_EQ(s1.size(), 1u);
    ASSERT_EQ(s2.size(), 1u);
    EXPECT_NE(s1[0], s2[0]); // second placement avoids the loaded box
}

TEST(ReservationLL, PlacesAndQueues)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    ReservationLLManager mgr(cluster, registry, 10);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(11)};
    std::vector<WorkloadId> ids;
    for (int i = 0; i < 12; ++i) {
        WorkloadId id = registry.add(f.singleNodeJob("s", "mix"));
        ids.push_back(id);
        drv.addArrival(id, 1.0 + i);
    }
    drv.run(8000.0);
    int done = 0;
    for (WorkloadId id : ids)
        done += registry.get(id).completed;
    EXPECT_GE(done, 10);
    EXPECT_NE(mgr.reservationFor(ids[0]), nullptr);
}

TEST(Paragon, AvoidsInterferingPlacement)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    ParagonManager mgr(cluster, registry, 12);
    workload::WorkloadFactory seeder{stats::Rng(13)};
    mgr.seedOffline(bench::standardSeeds(seeder, 3), 0.0);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(14)};
    std::vector<WorkloadId> ids;
    for (int i = 0; i < 10; ++i) {
        WorkloadId id = registry.add(f.singleNodeJob("s", "parsec"));
        ids.push_back(id);
        drv.addArrival(id, 1.0 + i);
    }
    drv.run(6000.0);
    int done = 0;
    for (WorkloadId id : ids)
        done += registry.get(id).completed;
    EXPECT_GE(done, 8);
    EXPECT_NE(mgr.estimateFor(ids[0]), nullptr);
}

TEST(AutoScale, ScalesOutUnderLoadAndBackIn)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    AutoScaleConfig cfg;
    cfg.hot_ticks = 1;
    AutoScaleManager mgr(cluster, registry, cfg, 15);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory f{stats::Rng(16)};
    auto load = std::make_shared<tracegen::PiecewiseLoad>(
        std::vector<std::pair<double, double>>{{0.0, 100.0},
                                               {2000.0, 100.0},
                                               {3000.0, 600.0},
                                               {8000.0, 600.0},
                                               {9000.0, 60.0},
                                               {20000.0, 60.0}});
    Workload svc = f.webService("w", 600.0, 0.1, load);
    WorkloadId id = registry.add(svc);
    drv.addArrival(id, 1.0);

    stats::TimeSeries instances;
    drv.setTickHook([&](double t) {
        instances.record(t, mgr.instancesOf(id));
    });
    drv.run(20000.0);
    double low = instances.meanOver(500.0, 2000.0);
    double high = instances.meanOver(6000.0, 8000.0);
    double late = instances.meanOver(15000.0, 20000.0);
    EXPECT_GT(high, low);
    EXPECT_LT(late, high);
    EXPECT_GE(instances.meanOver(0.0, 20000.0), 1.0);
}

TEST(FrameworkScheduler, DatasetDrivenReservation)
{
    workload::WorkloadFactory f{stats::Rng(17)};
    Workload small = f.hadoopJob("s", 5.0);
    Workload big = f.hadoopJob("b", 200.0);
    Reservation rs = frameworkReservation(small);
    Reservation rb = frameworkReservation(big);
    EXPECT_LT(rs.nodes, rb.nodes);
    EXPECT_EQ(rs.cores_per_node, 8);
    workload::FrameworkKnobs def = hadoopDefaultKnobs();
    EXPECT_EQ(def.mappers_per_node, 8);
    EXPECT_EQ(def.compression, workload::Compression::Lzo);
}

TEST(Comparative, QuasarBeatsLLOnSharedScenario)
{
    // Same six analytics jobs under both managers: Quasar's completion
    // times must be better in aggregate.
    auto run = [](bool quasar) {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        std::unique_ptr<driver::ClusterManager> mgr;
        if (quasar) {
            core::QuasarConfig cfg;
            cfg.seed = 21;
            auto q = std::make_unique<core::QuasarManager>(cluster,
                                                           registry,
                                                           cfg);
            workload::WorkloadFactory seeder{stats::Rng(22)};
            q->seedOffline(seeder, 20);
            mgr = std::move(q);
        } else {
            mgr = std::make_unique<FrameworkSelfManager>(cluster,
                                                         registry, 23);
        }
        driver::ScenarioDriver drv(cluster, registry, *mgr,
                                   driver::DriverConfig{.tick_s = 10.0});
        workload::WorkloadFactory f{stats::Rng(24)};
        std::vector<WorkloadId> ids;
        for (int i = 0; i < 6; ++i) {
            Workload j = f.hadoopJob("j", 20.0 + 10.0 * i);
            j.total_work *= 3.0;
            j.target = workload::PerformanceTarget::completionTime(
                bench::sweepBestCompletion(j, cluster.catalog(), 4),
                j.total_work);
            WorkloadId id = registry.add(j);
            ids.push_back(id);
            drv.addArrival(id, 5.0 * (i + 1));
        }
        drv.run(60000.0);
        double total = 0.0;
        for (WorkloadId id : ids) {
            const Workload &w = registry.get(id);
            EXPECT_TRUE(w.completed);
            if (w.completed)
                total += w.completion_time - w.arrival_time;
        }
        return total;
    };
    double t_ll = run(false);
    double t_q = run(true);
    EXPECT_LT(t_q, t_ll);
}
