/**
 * @file
 * Tests for the interference model: source bookkeeping, the
 * sensitivity threshold/slope/floor behaviour, tolerated-intensity
 * closed form, and microbenchmark intensity probing.
 */

#include <gtest/gtest.h>

#include "interference/microbench.hh"
#include "interference/profile.hh"

using namespace quasar::interference;

TEST(Source, NamesAndCount)
{
    EXPECT_EQ(kNumSources, 8u);
    EXPECT_EQ(sourceName(Source::MemoryBw), "memory");
    EXPECT_EQ(sourceName(Source::Prefetch), "prefetch");
    EXPECT_EQ(sourceAt(3), Source::DiskIO);
}

TEST(Source, VectorOps)
{
    IVector a = zeroVector();
    a[0] = 1.0;
    IVector b = zeroVector();
    b[0] = 2.0;
    b[7] = 1.0;
    IVector sum = add(a, b);
    EXPECT_DOUBLE_EQ(sum[0], 3.0);
    EXPECT_DOUBLE_EQ(sum[7], 1.0);
    IVector half = scale(sum, 0.5);
    EXPECT_DOUBLE_EQ(half[0], 1.5);
}

namespace
{

SensitivityProfile
profileWith(double threshold, double slope)
{
    SensitivityProfile p;
    p.threshold.fill(threshold);
    p.slope.fill(slope);
    p.caused_per_core.fill(0.05);
    return p;
}

} // namespace

TEST(SensitivityProfile, NoDegradationBelowThreshold)
{
    SensitivityProfile p = profileWith(0.4, 2.0);
    EXPECT_DOUBLE_EQ(p.sourceMultiplier(Source::Cpu, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.sourceMultiplier(Source::Cpu, 0.4), 1.0);
}

TEST(SensitivityProfile, LinearDegradationBeyondThreshold)
{
    SensitivityProfile p = profileWith(0.4, 2.0);
    EXPECT_NEAR(p.sourceMultiplier(Source::Cpu, 0.6), 1.0 - 2.0 * 0.2,
                1e-12);
}

TEST(SensitivityProfile, FloorBoundsLoss)
{
    SensitivityProfile p = profileWith(0.1, 10.0);
    p.floor = 0.05;
    EXPECT_DOUBLE_EQ(p.sourceMultiplier(Source::Cpu, 1.0), 0.05);
    IVector all_high;
    all_high.fill(1.0);
    EXPECT_DOUBLE_EQ(p.multiplier(all_high), 0.05);
}

TEST(SensitivityProfile, MultiplierIsProductOverSources)
{
    SensitivityProfile p = profileWith(0.5, 1.0);
    IVector c = zeroVector();
    c[0] = 0.7; // -> 0.8
    c[1] = 0.7; // -> 0.8
    EXPECT_NEAR(p.multiplier(c), 0.64, 1e-12);
}

TEST(SensitivityProfile, ToleratedIntensityClosedForm)
{
    SensitivityProfile p = profileWith(0.3, 2.0);
    // 5% loss at threshold + 0.05/2.
    EXPECT_NEAR(p.toleratedIntensity(Source::L2Cache, 0.05), 0.325,
                1e-12);
    // Insensitive source: slope 0 -> tolerant at any intensity.
    p.slope[0] = 0.0;
    EXPECT_DOUBLE_EQ(p.toleratedIntensity(Source::MemoryBw), 1.0);
}

TEST(SensitivityProfile, CausedScalesWithCores)
{
    SensitivityProfile p = profileWith(0.3, 2.0);
    IVector c4 = p.causedAt(4.0);
    EXPECT_DOUBLE_EQ(c4[0], 0.2);
}

TEST(Microbenchmark, CausedVectorIsSingleSource)
{
    Microbenchmark mb{Source::Network, 0.6};
    IVector v = mb.caused();
    for (size_t i = 0; i < kNumSources; ++i)
        EXPECT_DOUBLE_EQ(v[i],
                         i == size_t(Source::Network) ? 0.6 : 0.0);
}

TEST(ProbeTolerance, MatchesClosedForm)
{
    SensitivityProfile p = profileWith(0.3, 2.0);
    auto perf_at = [&](const IVector &iv) {
        return 10.0 * p.multiplier(iv);
    };
    double probed =
        probeToleratedIntensity(perf_at, Source::LLCache, 0.05, 0.01);
    EXPECT_NEAR(probed, p.toleratedIntensity(Source::LLCache, 0.05),
                0.011);
}

TEST(ProbeTolerance, InsensitiveWorkloadReturnsOne)
{
    auto perf_at = [](const IVector &) { return 5.0; };
    EXPECT_DOUBLE_EQ(
        probeToleratedIntensity(perf_at, Source::DiskIO), 1.0);
}

TEST(ProbeTolerance, DeadWorkloadReturnsZero)
{
    auto perf_at = [](const IVector &) { return 0.0; };
    EXPECT_DOUBLE_EQ(
        probeToleratedIntensity(perf_at, Source::DiskIO), 0.0);
}

TEST(ProbeTolerance, HypersensitiveDetectedImmediately)
{
    SensitivityProfile p = profileWith(0.0, 50.0);
    auto perf_at = [&](const IVector &iv) {
        return 10.0 * p.multiplier(iv);
    };
    EXPECT_LT(probeToleratedIntensity(perf_at, Source::Cpu), 0.03);
}
