/**
 * @file
 * Soak evidence for the QUASAR_VERIFY layer: run a real manager +
 * driver scenario and assert the verification hooks actually fired —
 * sweeps every tick, a shadow check per incremental-mode decision,
 * zero divergences. A silently-disabled oracle proves nothing, so the
 * acceptance claim ("the chaos and churn suites pass under the shadow
 * oracle") is only meaningful if these counters are shown to move.
 *
 * In non-verify builds every test here skips: the layer is compiled
 * out and there is nothing to observe.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/classifier.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"
#include "profiling/profiler.hh"
#include "workload/factory.hh"

#ifdef QUASAR_VERIFY
#include "verify/verify.hh"
#endif

using namespace quasar;
using workload::Workload;

#ifndef QUASAR_VERIFY

TEST(Verify, LayerCompiledOut)
{
    GTEST_SKIP() << "QUASAR_VERIFY is OFF; the verification layer is "
                    "compiled out of this build";
}

#else

namespace
{

struct World
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarManager mgr;
    driver::ScenarioDriver drv;
    workload::WorkloadFactory factory{stats::Rng(2024)};

    explicit World(uint64_t seed = 77)
        : mgr(cluster, registry,
              [seed] {
                  core::QuasarConfig c;
                  c.seed = seed;
                  return c;
              }()),
          drv(cluster, registry, mgr,
              driver::DriverConfig{.tick_s = 10.0})
    {
        workload::WorkloadFactory seeder{stats::Rng(4242)};
        mgr.seedOffline(seeder, 20);
    }
};

} // namespace

TEST(Verify, ScenarioSoakExercisesSweepsAndShadowOracle)
{
    const verify::Counters before = verify::counters();

    World w;
    for (int i = 0; i < 6; ++i) {
        Workload job =
            w.factory.hadoopJob("job", 30.0 + 15.0 * i);
        job.target = workload::WorkloadFactory::defaultAnalyticsTarget(
            job, w.cluster.catalog()[9]);
        w.drv.addArrival(w.registry.add(job), 5.0 + 40.0 * i);
    }
    w.drv.run(4000.0);

    const verify::Counters &after = verify::counters();
    // The driver sweeps the cluster once per tick.
    EXPECT_GT(after.cluster_sweeps, before.cluster_sweeps)
        << "tick sweep never ran";
    // The manager's scheduler runs in the default dirty_set mode, so
    // every placement decision above went through the shadow oracle.
    EXPECT_GT(after.shadow_checks, before.shadow_checks)
        << "shadow oracle never ran";
    // The process is alive, so no divergence aborted us — but assert
    // the counter anyway so a future soft-fail refactor can't rot.
    EXPECT_EQ(after.shadow_divergences, 0u);
}

TEST(Verify, FullRescanModeTakesNoShadowChecks)
{
    // The oracle re-runs incremental decisions through full_rescan;
    // a full_rescan primary must NOT be shadowed (it would only
    // compare the legacy path against itself, and recursing into a
    // second scheduler per decision would double every cost).
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler{cluster.catalog(), {}};
    core::Classifier clf{profiler, {}, 3};
    workload::WorkloadFactory factory{stats::Rng(91)};
    stats::Rng rng{92};

    std::vector<Workload> seeds;
    for (int i = 0; i < 8; ++i)
        seeds.push_back(
            factory.hadoopJob("seed", factory.rng().uniform(5.0, 150.0)));
    clf.seedOffline(seeds, 0.0);

    const uint64_t before = verify::counters().shadow_checks;

    core::SchedulerConfig cfg;
    cfg.full_rescan = true;
    core::GreedyScheduler legacy(cluster, cfg, &registry);

    WorkloadId id = registry.add(factory.hadoopJob("probe", 45.0));
    auto data = profiler.profile(registry.get(id), 0.0, rng);
    core::WorkloadEstimate est = clf.classify(registry.get(id), data);
    legacy.allocate(registry.get(id), est, 45.0, nullptr, false);

    EXPECT_EQ(verify::counters().shadow_checks, before)
        << "full_rescan decision was shadow-checked";
}

TEST(Verify, IndexAuditsFireAndCount)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    core::GreedyScheduler dirty(cluster); // dirty_set default
    core::WorkloadEstimate est;
    est.platform_factor.assign(cluster.catalog().size(), 1.0);

    const uint64_t before = verify::counters().index_audits;
    (void)dirty.rankedCandidates(est); // primes the maintained order
    dirty.auditIndexCoherenceNow();    // unsampled, must pass clean
    EXPECT_GT(verify::counters().index_audits, before)
        << "the forced audit did not run (or did not count itself)";
}

TEST(Verify, MutationWithoutNoteAbortsIndexAudit)
{
    // The coherence the incremental order depends on: every
    // placement-relevant mutation bumps version() AND lands in the
    // journal. Detach the journal from one server, mutate it, and the
    // next audit must catch the stale index entry and abort.
    sim::Cluster cluster = sim::Cluster::localCluster();
    core::GreedyScheduler dirty(cluster);
    core::WorkloadEstimate est;
    est.platform_factor.assign(cluster.catalog().size(), 1.0);
    (void)dirty.rankedCandidates(est); // primes index + order

    cluster.server(5).attachJournal(nullptr);
    cluster.server(5).degrade(0.5); // version bump, no journal note
    EXPECT_DEATH(
        {
            // The journal has no entry for server 5, so the replay
            // refreshes nothing; the unsampled audit then sees the
            // stale entry.
            (void)dirty.rankedCandidates(est);
            dirty.auditIndexCoherenceNow();
        },
        "not journaled");
}

// ---------------------------------------------------------------
// Per-mutator death tests, generated from the shared mutator list
// (src/verify/journaled_mutators.def). The static analyzer derives
// the same list from the Server class scan (ctest: lint_mutator_sync)
// so the two enforcement layers cannot silently diverge; this suite
// proves each listed mutator actually trips the runtime audit when
// its journal note is suppressed.
// ---------------------------------------------------------------

namespace
{

/** The workload placed ahead of time for share-targeting mutators. */
constexpr WorkloadId kResidentWorkload = 1;

sim::TaskShare
smallShare(WorkloadId w)
{
    sim::TaskShare s;
    s.workload = w;
    s.cores = 1;
    s.memory_gb = 1.0;
    s.storage_gb = 1.0;
    return s;
}

/** Apply the named mutation to `srv`. FAILs on an unknown name, so a
 *  .def entry with no dispatch arm here cannot pass silently. */
void
applyMutatorByName(sim::Server &srv, const std::string &name)
{
    if (name == "clearInjectedPressure") {
        srv.clearInjectedPressure();
    } else if (name == "degrade") {
        ASSERT_TRUE(srv.degrade(0.5));
    } else if (name == "injectPressureAt") {
        srv.injectPressureAt(0, interference::IVector{});
    } else if (name == "markDown") {
        (void)srv.markDown();
    } else if (name == "place") {
        srv.place(smallShare(kResidentWorkload + 1));
    } else if (name == "recover") {
        srv.recover();
    } else if (name == "remove") {
        ASSERT_TRUE(srv.remove(kResidentWorkload));
    } else if (name == "resize") {
        ASSERT_TRUE(srv.resize(kResidentWorkload, 2, 2.0));
    } else if (name == "setIsolation") {
        ASSERT_TRUE(srv.setIsolation(
            kResidentWorkload,
            static_cast<interference::Source>(0), true));
    } else {
        FAIL() << "journaled_mutators.def lists '" << name
               << "' but applyMutatorByName has no dispatch arm "
                  "for it";
    }
}

/** Prime the incremental index, detach the journal, apply the named
 *  mutation and assert the next audit aborts on the stale entry. */
void
mutatorTripsAudit(const std::string &name)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    core::GreedyScheduler dirty(cluster); // dirty_set default
    core::WorkloadEstimate est;
    est.platform_factor.assign(cluster.catalog().size(), 1.0);

    sim::Server &srv = cluster.server(5);
    // Share-targeting mutators need a resident share; place it while
    // the journal is still attached so the setup itself is coherent.
    if (name == "remove" || name == "resize" ||
        name == "setIsolation")
        srv.place(smallShare(kResidentWorkload));

    (void)dirty.rankedCandidates(est); // primes index + order
    srv.attachJournal(nullptr);
    applyMutatorByName(srv, name); // version bump, no journal note
    if (::testing::Test::HasFatalFailure())
        return;
    EXPECT_DEATH(
        {
            (void)dirty.rankedCandidates(est);
            dirty.auditIndexCoherenceNow();
        },
        "not journaled");
}

} // namespace

#define QUASAR_JOURNALED_MUTATOR(name)                                 \
    TEST(MutatorDeathSync, name) { mutatorTripsAudit(#name); }
#include "verify/journaled_mutators.def"
#undef QUASAR_JOURNALED_MUTATOR

#endif // QUASAR_VERIFY
