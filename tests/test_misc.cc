/**
 * @file
 * Edge-case coverage: event-queue cancellation corners, histogram
 * formatting, admission accounting, estimate helpers, classifier
 * model-cache amortization, monitor absolute measurements, and
 * miscellaneous string/describe helpers.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "core/classifier.hh"
#include "core/monitor.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "workload/factory.hh"

using namespace quasar;
using workload::Workload;

TEST(EventQueueEdge, EmptySeesThroughCancelledEvents)
{
    sim::EventQueue q;
    auto h1 = q.schedule(1.0, [] {});
    auto h2 = q.schedule(2.0, [] {});
    EXPECT_FALSE(q.empty());
    h1.cancel();
    h2.cancel();
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_EQ(q.eventsRun(), 0u);
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueEdge, CancelAfterFireIsNoop)
{
    sim::EventQueue q;
    int fired = 0;
    auto h = q.schedule(1.0, [&] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 1);
    h.cancel(); // already fired; must not crash or double-count
    EXPECT_FALSE(h.pending());
}

TEST(EventQueueEdge, StepReturnsFalseWhenDrained)
{
    sim::EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule(1.0, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(HistogramEdge, CdfTableCoversPercentiles)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(double(i));
    std::string table = stats::formatCdfTable(xs, "value", 4);
    // Header plus five rows (0, 25, 50, 75, 100).
    EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 6);
    EXPECT_NE(table.find("value"), std::string::npos);
}

TEST(HistogramEdge, SingleBinAbsorbsEverything)
{
    stats::Histogram h(0.0, 1.0, 1);
    h.add(0.2);
    h.add(0.9);
    EXPECT_DOUBLE_EQ(h.count(0), 2.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(1.0), 1.0);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 1.0);
}

TEST(Describe, ConfigStringsCarryKnobs)
{
    workload::ScaleUpConfig cfg;
    cfg.cores = 8;
    cfg.memory_gb = 16.0;
    cfg.knobs.mappers_per_node = 12;
    cfg.knobs.compression = workload::Compression::Gzip;
    std::string a = cfg.describe(workload::WorkloadType::Analytics);
    EXPECT_NE(a.find("m=12"), std::string::npos);
    EXPECT_NE(a.find("gzip"), std::string::npos);
    std::string b = cfg.describe(workload::WorkloadType::SingleNode);
    EXPECT_EQ(b.find("gzip"), std::string::npos);
    EXPECT_EQ(workload::workloadTypeName(
                  workload::WorkloadType::StatefulService),
              "stateful-service");
}

TEST(TruthEdge, CapacityQpsScalesInverselyWithCost)
{
    workload::GroundTruth t;
    t.req_cost = 1e-3;
    EXPECT_DOUBLE_EQ(t.capacityQps(5.0), 5000.0);
    t.req_cost = 2e-3;
    EXPECT_DOUBLE_EQ(t.capacityQps(5.0), 2500.0);
}

TEST(ServerEdge, StorageBindsPlacement)
{
    auto catalog = sim::localPlatforms();
    sim::Server srv(0, catalog[0]); // A: 250 GB storage
    EXPECT_TRUE(srv.canFit(1, 1.0, 250.0));
    EXPECT_FALSE(srv.canFit(1, 1.0, 251.0));
    sim::TaskShare s;
    s.workload = 1;
    s.cores = 1;
    s.memory_gb = 1.0;
    s.storage_gb = 200.0;
    srv.place(s);
    EXPECT_FALSE(srv.canFit(1, 1.0, 100.0));
    EXPECT_NEAR(srv.storageUtilization(), 0.8, 1e-12);
}

TEST(Monitor, AbsoluteMeasurementUnits)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    workload::WorkloadFactory f{stats::Rng(3)};

    Workload batch = f.singleNodeJob("b", "parsec");
    WorkloadId bid = registry.add(batch);
    Workload svc = f.memcachedService(
        "m", 1e5, 2e-4, 32.0, std::make_shared<tracegen::FlatLoad>(1e5));
    WorkloadId sid = registry.add(svc);

    sim::TaskShare share;
    share.workload = bid;
    share.cores = 4;
    share.memory_gb = 4.0;
    cluster.server(36).place(share);
    share.workload = sid;
    share.cores = 16;
    share.memory_gb = 32.0;
    cluster.server(37).place(share);

    core::MonitorConfig cfg;
    cfg.noise_sigma = 0.0;
    core::Monitor m(cluster, registry, cfg, stats::Rng(4));
    // Batch measured in work units/s (small), service in QPS (large).
    EXPECT_LT(m.measureAbsolute(registry.get(bid), 0.0), 100.0);
    EXPECT_GT(m.measureAbsolute(registry.get(sid), 0.0), 1e4);
}

TEST(Classifier, ModelCacheAmortizesRefits)
{
    auto catalog = sim::localPlatforms();
    profiling::Profiler profiler(catalog, {});
    core::Classifier clf(profiler, {}, 9);
    workload::WorkloadFactory f{stats::Rng(10)};
    std::vector<Workload> seeds;
    for (int i = 0; i < 10; ++i)
        seeds.push_back(f.hadoopJob("s", f.rng().uniform(5, 100)));
    clf.seedOffline(seeds, 0.0);
    stats::Rng rng(11);

    // First classification pays the fit; immediately-following ones
    // fold into the cached model and must be much faster.
    Workload w0 = f.hadoopJob("x", 40.0);
    auto d0 = profiler.profile(w0, 0.0, rng);
    auto t0 = std::chrono::steady_clock::now();
    clf.classify(w0, d0);
    auto t1 = std::chrono::steady_clock::now();
    double first = std::chrono::duration<double>(t1 - t0).count();

    double warm = 0.0;
    for (int i = 0; i < 5; ++i) {
        Workload w = f.hadoopJob("x", 40.0);
        auto d = profiler.profile(w, 0.0, rng);
        auto a = std::chrono::steady_clock::now();
        clf.classify(w, d);
        auto b = std::chrono::steady_clock::now();
        warm += std::chrono::duration<double>(b - a).count();
    }
    EXPECT_LT(warm / 5.0, first);
}

TEST(Rng, ParetoHeavyTail)
{
    stats::Rng rng(12);
    stats::Samples s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.pareto(1.0, 2.0));
    // Mean of Pareto(xm=1, alpha=2) is 2.
    EXPECT_NEAR(s.mean(), 2.0, 0.25);
    EXPECT_GT(s.max(), 10.0);
}

TEST(Snapshot, ReservedTracksAllocationNotUsage)
{
    sim::Cluster c = sim::Cluster::localCluster();
    sim::TaskShare s;
    s.workload = 1;
    s.cores = 10;
    s.memory_gb = 10.0;
    c.server(39).place(s); // usage not set -> used 0
    auto snap = c.snapshot();
    EXPECT_GT(snap.cpu_reserved, 0.0);
    EXPECT_DOUBLE_EQ(snap.cpu_used, 0.0);
}
