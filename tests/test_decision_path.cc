/**
 * @file
 * A/B equivalence proof for the incremental decision path: the cached
 * platform/interference indices and lazy-heap ranking must pick the
 * exact same placements as the legacy full-rescan path
 * (SchedulerConfig::full_rescan) — first at the scheduler level over a
 * many-seed sweep of perturbed clusters, then end-to-end through the
 * manager on a compact Fig. 6-style mixed scenario, and finally under
 * open-loop churn: a many-seed sweep of seeded arrival / departure /
 * fault streams where all three decision paths (dirty-set journal
 * index, per-call cached index, legacy full rescan) must finish in
 * the same simulated state workload for workload.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "churn/churn.hh"
#include "core/classifier.hh"
#include "core/manager.hh"
#include "core/scheduler.hh"
#include "driver/scenario.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::Allocation;
using core::GreedyScheduler;
using core::SchedulerConfig;
using core::WorkloadEstimate;
using workload::Workload;

namespace
{

/** Structural equality of two allocation decisions. */
void
expectSameAllocation(const std::optional<Allocation> &a,
                     const std::optional<Allocation> &b,
                     const std::string &ctx)
{
    ASSERT_EQ(a.has_value(), b.has_value()) << ctx;
    if (!a)
        return;
    EXPECT_EQ(a->degraded, b->degraded) << ctx;
    EXPECT_DOUBLE_EQ(a->predicted_perf, b->predicted_perf) << ctx;
    ASSERT_EQ(a->nodes.size(), b->nodes.size()) << ctx;
    for (size_t i = 0; i < a->nodes.size(); ++i) {
        EXPECT_EQ(a->nodes[i].server, b->nodes[i].server) << ctx;
        EXPECT_EQ(a->nodes[i].scale_up_col, b->nodes[i].scale_up_col)
            << ctx;
        EXPECT_EQ(a->nodes[i].cores, b->nodes[i].cores) << ctx;
        EXPECT_DOUBLE_EQ(a->nodes[i].memory_gb, b->nodes[i].memory_gb)
            << ctx;
    }
    ASSERT_EQ(a->evictions.size(), b->evictions.size()) << ctx;
    for (size_t i = 0; i < a->evictions.size(); ++i)
        EXPECT_EQ(a->evictions[i], b->evictions[i]) << ctx;
}

/** Per-seed world: classifier anchored on the cluster's own catalog. */
struct SweepWorld
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler{cluster.catalog(), {}};
    core::Classifier clf{profiler, {}, 3};
    workload::WorkloadFactory factory;
    stats::Rng rng;

    explicit SweepWorld(uint64_t seed)
        : factory{stats::Rng(seed)}, rng{seed + 1}
    {
        std::vector<Workload> seeds;
        for (int i = 0; i < 5; ++i)
            seeds.push_back(factory.hadoopJob(
                "seed", factory.rng().uniform(5.0, 150.0)));
        static const char *fams[] = {"spec-int", "parsec", "specjbb",
                                     "mix"};
        for (int i = 0; i < 6; ++i)
            seeds.push_back(factory.singleNodeJob("seed", fams[i % 4]));
        clf.seedOffline(seeds, 0.0);
    }

    std::pair<WorkloadId, WorkloadEstimate> make(Workload w)
    {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return {id, clf.classify(registry.get(id), data)};
    }

    /** Commit a decision so the next placement sees its effects. */
    void apply(WorkloadId id, const Allocation &alloc)
    {
        Workload &w = registry.get(id);
        for (const auto &[sid, victim] : alloc.evictions)
            cluster.server(sid).remove(victim);
        for (const auto &node : alloc.nodes) {
            sim::TaskShare share;
            share.workload = id;
            share.cores = node.cores;
            share.memory_gb = node.memory_gb;
            share.storage_gb = w.storage_gb_per_node;
            share.caused = w.causedPressure(0.0, node.cores);
            share.best_effort = w.best_effort;
            cluster.server(node.server).place(share);
        }
    }

    /** Seed-dependent occupancy, degradations, and downed servers. */
    void perturb(const Workload &be)
    {
        for (size_t s = 0; s < cluster.size(); ++s) {
            sim::Server &srv = cluster.server(ServerId(s));
            if (rng.chance(0.10)) {
                srv.markDown();
                continue;
            }
            if (rng.chance(0.15))
                srv.degrade(rng.uniform(0.3, 0.9));
            if (!rng.chance(0.6))
                continue;
            int cores = std::max(1, srv.platform().cores / 4);
            double mem = srv.platform().memory_gb / 8.0;
            int fills = int(rng.uniformInt(1, 3));
            for (int k = 0; k < fills; ++k) {
                if (!srv.canFit(cores, mem, 0.0))
                    break;
                sim::TaskShare share;
                share.workload =
                    WorkloadId(1000000 + s * 8 + size_t(k));
                share.cores = cores;
                share.memory_gb = mem;
                share.caused = be.causedPressure(0.0, cores);
                share.best_effort = true;
                srv.place(share);
            }
        }
    }

    Workload randomWorkload()
    {
        switch (rng.uniformInt(0, 2)) {
        case 0:
            return factory.hadoopJob("job",
                                     rng.uniform(10.0, 120.0));
        case 1: {
            static const char *fams[] = {"spec-int", "parsec",
                                         "specjbb", "mix"};
            return factory.singleNodeJob("one",
                                         fams[rng.uniformInt(0, 3)]);
        }
        default:
            return factory.bestEffortJob("be");
        }
    }
};

} // namespace

TEST(DecisionPath, IncrementalMatchesFullRescanAcrossSeeds)
{
    constexpr int kSeeds = 24;
    constexpr int kPlacementsPerSeed = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
        SweepWorld w(uint64_t(100 + seed));
        Workload be = w.factory.bestEffortJob("filler");
        w.perturb(be);

        SchedulerConfig inc_cfg; // incremental (default)
        SchedulerConfig full_cfg;
        full_cfg.full_rescan = true;
        GreedyScheduler inc(w.cluster, inc_cfg);
        GreedyScheduler full(w.cluster, full_cfg);

        for (int p = 0; p < kPlacementsPerSeed; ++p) {
            auto [id, est] = w.make(w.randomWorkload());
            const Workload &job = w.registry.get(id);
            double target = job.total_work > 0.0
                                ? job.total_work / 600.0
                                : 1.0;
            bool may_evict = (p % 2 == 0);
            auto a = inc.allocate(job, est, target, nullptr,
                                  may_evict);
            auto b = full.allocate(job, est, target, nullptr,
                                   may_evict);
            std::string ctx = "seed " + std::to_string(seed) +
                              " placement " + std::to_string(p);
            expectSameAllocation(a, b, ctx);
            if (a)
                w.apply(id, *a); // both schedulers see the commit
            // Mid-stream fault: caches must track it too.
            if (p == kPlacementsPerSeed / 2) {
                ServerId sid =
                    ServerId(w.rng.uniformInt(0, int64_t(w.cluster.size()) - 1));
                w.cluster.server(sid).markDown();
            }
        }
    }
}

namespace
{

/** Run a compact Fig. 6-style mixed scenario; return the driver's
 *  final state for comparison. */
struct MixedRun
{
    std::vector<double> work_done;
    std::vector<bool> completed;
    std::vector<double> completion_time;
    std::vector<std::vector<ServerId>> hosting;
    core::QuasarStats stats;
};

MixedRun
runMixedScenario(bool full_rescan)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    cfg.seed = 71;
    cfg.scheduler.full_rescan = full_rescan;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(72)};
    mgr.seedOffline(seeder, 20);

    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0,
                                                    .record_every = 3});
    workload::WorkloadFactory f{stats::Rng(73)};
    std::vector<WorkloadId> ids;
    for (int i = 0; i < 8; ++i) {
        Workload j = f.hadoopJob("mahout-" + std::to_string(i + 1),
                                 f.rng().uniform(5.0, 60.0));
        j.total_work *= 3.0;
        ids.push_back(registry.add(j));
    }
    for (int i = 0; i < 2; ++i)
        ids.push_back(registry.add(f.stormJob(
            "storm-" + std::to_string(i + 1),
            f.rng().uniform(4.0, 25.0))));
    for (int i = 0; i < 2; ++i)
        ids.push_back(registry.add(f.sparkJob(
            "spark-" + std::to_string(i + 1),
            f.rng().uniform(4.0, 30.0))));
    for (size_t i = 0; i < ids.size(); ++i)
        drv.addArrival(ids[i], 5.0 * double(i + 1));
    for (double t = 30.0; t < 3000.0; t += 30.0) {
        WorkloadId id = registry.add(f.bestEffortJob("be"));
        ids.push_back(id);
        drv.addArrival(id, t);
    }
    drv.run(4500.0);

    MixedRun r;
    for (WorkloadId id : ids) {
        const Workload &w = registry.get(id);
        r.work_done.push_back(w.work_done);
        r.completed.push_back(w.completed);
        r.completion_time.push_back(w.completed ? w.completion_time
                                                : -1.0);
        r.hosting.push_back(cluster.serversHosting(id));
    }
    r.stats = mgr.stats();
    return r;
}

} // namespace

TEST(DecisionPath, MixedScenarioIsBitIdenticalToFullRescan)
{
    MixedRun inc = runMixedScenario(false);
    MixedRun full = runMixedScenario(true);

    ASSERT_EQ(inc.work_done.size(), full.work_done.size());
    for (size_t i = 0; i < inc.work_done.size(); ++i) {
        EXPECT_DOUBLE_EQ(inc.work_done[i], full.work_done[i])
            << "workload " << i;
        EXPECT_EQ(inc.completed[i], full.completed[i])
            << "workload " << i;
        EXPECT_DOUBLE_EQ(inc.completion_time[i],
                         full.completion_time[i])
            << "workload " << i;
        EXPECT_EQ(inc.hosting[i], full.hosting[i]) << "workload " << i;
    }

    // Every decision counter must agree; the TimerStat fields are
    // wall-clock and excluded by design.
    EXPECT_EQ(inc.stats.scheduled, full.stats.scheduled);
    EXPECT_EQ(inc.stats.queued, full.stats.queued);
    EXPECT_EQ(inc.stats.rescheduled, full.stats.rescheduled);
    EXPECT_EQ(inc.stats.evictions, full.stats.evictions);
    EXPECT_EQ(inc.stats.phase_reclassifications,
              full.stats.phase_reclassifications);
    EXPECT_EQ(inc.stats.scale_up_adjustments,
              full.stats.scale_up_adjustments);
    EXPECT_EQ(inc.stats.scale_out_adjustments,
              full.stats.scale_out_adjustments);
    EXPECT_EQ(inc.stats.shrinks, full.stats.shrinks);
    EXPECT_EQ(inc.stats.feedback_updates, full.stats.feedback_updates);
    EXPECT_EQ(inc.stats.partitions_granted,
              full.stats.partitions_granted);
    EXPECT_EQ(inc.stats.server_failures, full.stats.server_failures);
    EXPECT_EQ(inc.stats.tasks_displaced, full.stats.tasks_displaced);
    EXPECT_EQ(inc.stats.recoveries, full.stats.recoveries);
}

namespace
{

/** Scheduler decision-path variants under test. */
enum class Mode
{
    DirtySet,
    Cached,
    FullRescan,
};

/** Final simulated state of one churn run, for equality checks. */
struct ChurnRun
{
    std::vector<double> work_done;
    std::vector<bool> completed;
    std::vector<bool> killed;
    std::vector<std::vector<ServerId>> hosting;
    size_t scheduled = 0;
    size_t evictions = 0;
    size_t server_failures = 0;
    size_t recoveries = 0;
};

ChurnRun
runChurnScenario(uint64_t seed, Mode mode)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    cfg.seed = 7;
    cfg.scheduler.dirty_set = mode == Mode::DirtySet;
    cfg.scheduler.full_rescan = mode == Mode::FullRescan;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(8)};
    mgr.seedOffline(seeder, 12);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 10.0, .record_every = 4});

    churn::ChurnConfig ccfg;
    ccfg.seed = seed;
    ccfg.arrivals = churn::ArrivalKind::Pareto;
    ccfg.arrival_rate_per_s = 0.15;
    ccfg.horizon_s = 400.0;
    ccfg.phase_change_fraction = 0.15;
    // ~4 expected machine events over the horizon: every mode must
    // track displacements and recoveries identically.
    ccfg.server_mttf_s = 4000.0;
    ccfg.server_mttr_s = 120.0;
    ccfg.service_lifetime = tracegen::DurationSpec::lognormal(200.0, 0.7);
    ccfg.analytics_lifetime = tracegen::DurationSpec::pareto(150.0, 1.8);
    ccfg.batch_lifetime = tracegen::DurationSpec::exponential(120.0);
    ccfg.best_effort_lifetime = tracegen::DurationSpec::exponential(80.0);
    churn::ChurnEngine engine(ccfg);
    engine.install(cluster, registry, drv);
    drv.run(ccfg.horizon_s);

    ChurnRun r;
    for (const churn::ChurnItem &item : engine.plan()) {
        const Workload &w = registry.get(item.id);
        r.work_done.push_back(w.work_done);
        r.completed.push_back(w.completed);
        r.killed.push_back(w.killed);
        r.hosting.push_back(cluster.serversHosting(item.id));
    }
    const core::QuasarStats &st = mgr.stats();
    r.scheduled = st.scheduled;
    r.evictions = st.evictions;
    r.server_failures = st.server_failures;
    r.recoveries = st.recoveries;
    return r;
}

void
expectSameChurnRun(const ChurnRun &a, const ChurnRun &b,
                   const std::string &ctx)
{
    ASSERT_EQ(a.work_done.size(), b.work_done.size()) << ctx;
    for (size_t i = 0; i < a.work_done.size(); ++i) {
        std::string wctx = ctx + " workload " + std::to_string(i);
        EXPECT_DOUBLE_EQ(a.work_done[i], b.work_done[i]) << wctx;
        EXPECT_EQ(a.completed[i], b.completed[i]) << wctx;
        EXPECT_EQ(a.killed[i], b.killed[i]) << wctx;
        EXPECT_EQ(a.hosting[i], b.hosting[i]) << wctx;
    }
    EXPECT_EQ(a.scheduled, b.scheduled) << ctx;
    EXPECT_EQ(a.evictions, b.evictions) << ctx;
    EXPECT_EQ(a.server_failures, b.server_failures) << ctx;
    EXPECT_EQ(a.recoveries, b.recoveries) << ctx;
}

} // namespace

TEST(DecisionPath, ChurnSweepAllModesBitIdentical)
{
    constexpr uint64_t kSeeds = 20;
    size_t total_failures = 0;
    size_t total_kills = 0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        ChurnRun full = runChurnScenario(seed, Mode::FullRescan);
        ChurnRun dirty = runChurnScenario(seed, Mode::DirtySet);
        ChurnRun cached = runChurnScenario(seed, Mode::Cached);
        std::string ctx = "seed " + std::to_string(seed);
        expectSameChurnRun(dirty, full, ctx + " dirty-vs-full");
        expectSameChurnRun(cached, full, ctx + " cached-vs-full");
        total_failures += full.server_failures;
        for (bool k : full.killed)
            total_kills += k ? 1 : 0;
    }
    // The sweep only proves something if churn actually happened:
    // departures retired workloads and machines failed under load.
    EXPECT_GT(total_kills, kSeeds);
    EXPECT_GT(total_failures, 0u);
}
