/**
 * @file
 * Trace ingestion & replay subsystem tests: parser strictness
 * (table-driven malformed-row handling, diagnostics, never crash),
 * canonical-stream mapping (classification, pairing, rescaling),
 * replay determinism across scheduler modes and re-replays, the
 * trace synthesizer's fits, the closed-loop churn variant, and the
 * hosting-index / active-list fast paths behind them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "churn/churn.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"
#include "sim/cluster.hh"
#include "trace/azure.hh"
#include "trace/google.hh"
#include "trace/mapper.hh"
#include "trace/replay.hh"
#include "trace/synth.hh"
#include "workload/factory.hh"

using namespace quasar;

namespace
{

std::string
fixturePath(const std::string &name)
{
    return std::string(QUASAR_SOURCE_DIR) + "/tests/traces/" + name;
}

trace::TraceStream
parseGoogle(const std::string &text, trace::ParseOptions opt = {})
{
    trace::StringLines lines(text);
    return trace::parseGoogleTaskEvents(lines, opt);
}

trace::TraceStream
parseAzure(const std::string &text, trace::ParseOptions opt = {})
{
    trace::StringLines lines(text);
    return trace::parseAzureVm(lines, opt);
}

/** A well-formed Google task-events row. */
std::string
gRow(long long t_us, int job, int task, int type, int sched, int prio,
     double cpu, double mem)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%lld,,%d,%d,,%d,user,%d,%d,%g,%g,0,0",
                  t_us, job, task, type, sched, prio, cpu, mem);
    return buf;
}

trace::TraceEvent
ev(trace::TraceEventKind kind, double t, uint64_t id, double cpu,
   double mem, int prio = 0, int sched = 0)
{
    trace::TraceEvent e;
    e.kind = kind;
    e.time_s = t;
    e.instance = id;
    e.cpu = cpu;
    e.memory = mem;
    e.priority = prio;
    e.sched_class = sched;
    return e;
}

/** A manual canonical stream (already sorted by construction). */
trace::TraceStream
makeStream(std::vector<trace::TraceEvent> events)
{
    trace::TraceStream s;
    s.events = std::move(events);
    std::stable_sort(s.events.begin(), s.events.end(),
                     [](const trace::TraceEvent &a,
                        const trace::TraceEvent &b) {
                         return a.time_s < b.time_s;
                     });
    if (!s.events.empty()) {
        s.start_s = s.events.front().time_s;
        s.end_s = s.events.back().time_s;
    }
    return s;
}

} // namespace

// ---------------------------------------------------------------------
// Google parser
// ---------------------------------------------------------------------

TEST(TraceGoogle, ParsesWellFormedRows)
{
    std::string text = gRow(2'000'000, 7, 0, 0, 2, 4, 0.25, 0.1) + "\n" +
                       gRow(5'000'000, 7, 0, 4, 2, 4, 0.25, 0.1) + "\n" +
                       gRow(3'000'000, 7, 1, 0, 2, 4, 0.5, 0.2) + "\n" +
                       gRow(4'000'000, 7, 1, 8, 2, 4, 0.6, 0.2) + "\n";
    trace::TraceStream s = parseGoogle(text);
    EXPECT_EQ(s.format, "google-task-events");
    EXPECT_EQ(s.rows_total, 4u);
    EXPECT_EQ(s.rows_ok, 4u);
    EXPECT_EQ(s.rows_rejected, 0u);
    ASSERT_EQ(s.events.size(), 4u);
    // Sorted by time; kinds mapped SUBMIT->Arrival, FINISH->
    // Departure, UPDATE_RUNNING->Resize.
    EXPECT_EQ(s.events[0].kind, trace::TraceEventKind::Arrival);
    EXPECT_DOUBLE_EQ(s.events[0].time_s, 2.0);
    EXPECT_EQ(s.events[1].kind, trace::TraceEventKind::Arrival);
    EXPECT_EQ(s.events[2].kind, trace::TraceEventKind::Resize);
    EXPECT_EQ(s.events[3].kind, trace::TraceEventKind::Departure);
    // (job, task) folds to a stable instance id; the two rows of task
    // 0 agree and differ from task 1.
    EXPECT_EQ(s.events[0].instance, s.events[3].instance);
    EXPECT_NE(s.events[0].instance, s.events[1].instance);
    EXPECT_DOUBLE_EQ(s.start_s, 2.0);
    EXPECT_DOUBLE_EQ(s.end_s, 5.0);
    EXPECT_EQ(s.events[0].priority, 4);
    EXPECT_EQ(s.events[0].sched_class, 2);
    EXPECT_DOUBLE_EQ(s.events[0].cpu, 0.25);
}

TEST(TraceGoogle, MalformedRowsRejectedWithDiagnostics)
{
    struct Case
    {
        const char *row;
        const char *reason_substr;
    };
    // Every malformed shape the format doc promises to reject, each
    // with a per-line diagnostic naming the reason. One good row in
    // the middle proves rejection is per-row, not per-file.
    const Case cases[] = {
        {"1,,2,3,,0,u,0,0,0.1,0.1,0", "expected 13 fields, got 12"},
        {"1,,2,3,,0,u,0,0,0.1,0.1,0,0,x", "expected 13 fields, got 14"},
        {"zap,,2,3,,0,u,0,0,0.1,0.1,0,0", "timestamp not an integer"},
        {"-4,,2,3,,0,u,0,0,0.1,0.1,0,0", "negative timestamp"},
        {"9223372036854775807,,2,3,,0,u,0,0,0.1,0.1,0,0",
         "outside the trace window"},
        {"1,,x,3,,0,u,0,0,0.1,0.1,0,0", "job id not an integer"},
        {"1,,2,y,,0,u,0,0,0.1,0.1,0,0", "task index not an integer"},
        {"1,,2,3,,9.5,u,0,0,0.1,0.1,0,0", "event type not an integer"},
        {"1,,2,3,,11,u,0,0,0.1,0.1,0,0", "unknown event type 11"},
        {"1,,2,3,,0,u,weird,0,0.1,0.1,0,0",
         "scheduling class not an integer"},
        {"1,,2,3,,0,u,0,high,0.1,0.1,0,0", "priority not an integer"},
        {"1,,2,3,,0,u,0,0,nope,0.1,0,0", "CPU request not a number"},
        {"1,,2,3,,0,u,0,0,0.1,nope,0,0", "memory request not a number"},
        {"1,,2,3,,0,u,0,0,2.5,0.1,0,0", "CPU request out of range"},
        {"1,,2,3,,0,u,0,0,0.1,-0.2,0,0", "memory request out of range"},
    };
    std::string text;
    size_t good_line = 0, lineno = 0;
    for (const Case &c : cases) {
        text += std::string(c.row) + "\n";
        ++lineno;
        if (lineno == 7) {
            text += gRow(1'000'000, 1, 1, 0, 0, 0, 0.1, 0.1) + "\n";
            good_line = ++lineno;
        }
    }
    trace::TraceStream s = parseGoogle(text);
    const size_t n_bad = std::size(cases);
    EXPECT_EQ(s.rows_total, n_bad + 1);
    EXPECT_EQ(s.rows_ok, 1u);
    EXPECT_EQ(s.rows_rejected, n_bad);
    ASSERT_EQ(s.diagnostics.size(), n_bad);
    EXPECT_EQ(s.events.size(), 1u);
    size_t diag = 0;
    for (size_t line = 1; line <= lineno; ++line) {
        if (line == good_line)
            continue;
        EXPECT_EQ(s.diagnostics[diag].line, line);
        EXPECT_NE(s.diagnostics[diag].reason.find(
                      cases[diag].reason_substr),
                  std::string::npos)
            << "line " << line << ": got '"
            << s.diagnostics[diag].reason << "', want substring '"
            << cases[diag].reason_substr << "'";
        ++diag;
    }
}

TEST(TraceGoogle, SourceSchedulerEventsIgnoredNotRejected)
{
    std::string text;
    for (int type : {1, 2, 3})
        text += gRow(1'000'000, 1, type, type, 0, 0, 0.1, 0.1) + "\n";
    trace::TraceStream s = parseGoogle(text);
    EXPECT_EQ(s.rows_ok, 3u);
    EXPECT_EQ(s.rows_ignored, 3u);
    EXPECT_EQ(s.rows_rejected, 0u);
    EXPECT_TRUE(s.events.empty());
}

TEST(TraceGoogle, EmptyInputYieldsEmptyStream)
{
    trace::TraceStream s = parseGoogle("");
    EXPECT_EQ(s.rows_total, 0u);
    EXPECT_TRUE(s.events.empty());
    EXPECT_TRUE(s.diagnostics.empty());
    EXPECT_DOUBLE_EQ(s.spanSeconds(), 0.0);
    // Blank lines are not rows at all.
    s = parseGoogle("\n\n\n");
    EXPECT_EQ(s.rows_total, 0u);
}

TEST(TraceGoogle, OutOfOrderRowsAreSortedStably)
{
    std::string text = gRow(9'000'000, 1, 0, 4, 0, 0, 0.1, 0.1) + "\n" +
                       gRow(1'000'000, 1, 0, 0, 0, 0, 0.1, 0.1) + "\n" +
                       gRow(5'000'000, 2, 0, 0, 0, 0, 0.1, 0.1) + "\n";
    trace::TraceStream s = parseGoogle(text);
    ASSERT_EQ(s.events.size(), 3u);
    EXPECT_DOUBLE_EQ(s.events[0].time_s, 1.0);
    EXPECT_DOUBLE_EQ(s.events[1].time_s, 5.0);
    EXPECT_DOUBLE_EQ(s.events[2].time_s, 9.0);
    EXPECT_DOUBLE_EQ(s.start_s, 1.0);
    EXPECT_DOUBLE_EQ(s.end_s, 9.0);
}

TEST(TraceGoogle, DiagnosticStorageIsCappedCountsAreNot)
{
    std::string text;
    for (int i = 0; i < 10; ++i)
        text += "garbage\n";
    trace::ParseOptions opt;
    opt.max_diagnostics = 4;
    trace::TraceStream s = parseGoogle(text, opt);
    EXPECT_EQ(s.rows_rejected, 10u);
    EXPECT_EQ(s.diagnostics.size(), 4u);
}

TEST(TraceGoogle, UnopenablePathReportsLineZeroDiagnostic)
{
    trace::TraceStream s =
        trace::parseGoogleTaskEventsFile("/nonexistent/trace.csv");
    EXPECT_EQ(s.rows_rejected, 1u);
    ASSERT_EQ(s.diagnostics.size(), 1u);
    EXPECT_EQ(s.diagnostics[0].line, 0u);
    EXPECT_NE(s.diagnostics[0].reason.find("/nonexistent/trace.csv"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Azure parser
// ---------------------------------------------------------------------

TEST(TraceAzure, ParsesHeaderRowsAndNormalizesBuckets)
{
    std::string text = "vmid,created,deleted,category,cores,mem_gb\n"
                       "100,0,600,interactive,4,16\n"
                       "101,50,,delay-insensitive,8,32\n"
                       "102,100,-1,unknown,2,8\n";
    trace::TraceStream s = parseAzure(text);
    EXPECT_EQ(s.format, "azure-vm");
    EXPECT_EQ(s.rows_total, 3u);
    EXPECT_EQ(s.rows_ok, 3u);
    // 3 arrivals + 1 departure (only vm 100 is deleted inside the
    // window; empty and -1 both mean "never").
    ASSERT_EQ(s.events.size(), 4u);
    size_t departures = 0;
    for (const trace::TraceEvent &e : s.events)
        if (e.kind == trace::TraceEventKind::Departure)
            ++departures;
    EXPECT_EQ(departures, 1u);
    // Demands normalized to the largest buckets seen (8 cores, 32 GB).
    EXPECT_DOUBLE_EQ(s.events[0].cpu, 0.5);      // vm 100: 4/8
    EXPECT_DOUBLE_EQ(s.events[0].memory, 0.5);   // 16/32
    // Category hints: interactive maps like the production band.
    EXPECT_EQ(s.events[0].priority, 9);
    EXPECT_EQ(s.events[0].sched_class, 3);
    EXPECT_EQ(s.events[1].priority, 5);  // delay-insensitive
    EXPECT_EQ(s.events[2].priority, 0);  // unknown
}

TEST(TraceAzure, MalformedRowsRejectedWithDiagnostics)
{
    struct Case
    {
        const char *row;
        const char *reason_substr;
    };
    const Case cases[] = {
        {"1,100,200,interactive,4", "expected 6 fields, got 5"},
        {",100,200,interactive,4,8", "empty vm id"},
        {"2,zap,200,interactive,4,8", "create time not a number"},
        {"3,-7,200,interactive,4,8", "negative create time"},
        {"4,100,zap,interactive,4,8", "delete time not a number"},
        {"5,500,400,interactive,4,8",
         "delete time precedes create time"},
        {"6,100,200,interactive,zap,8", "core bucket not a number"},
        {"7,100,200,interactive,0,8", "core bucket out of range"},
        {"8,100,200,interactive,2000,8", "core bucket out of range"},
        {"9,100,200,interactive,4,zap", "memory bucket not a number"},
        {"10,100,200,interactive,4,99999",
         "memory bucket out of range"},
        {"11,100,200,zebra,4,8", "unknown vm category 'zebra'"},
    };
    std::string text;
    for (const Case &c : cases)
        text += std::string(c.row) + "\n";
    trace::TraceStream s = parseAzure(text);
    const size_t n_bad = std::size(cases);
    EXPECT_EQ(s.rows_total, n_bad);
    EXPECT_EQ(s.rows_ok, 0u);
    EXPECT_EQ(s.rows_rejected, n_bad);
    ASSERT_EQ(s.diagnostics.size(), n_bad);
    for (size_t i = 0; i < n_bad; ++i) {
        EXPECT_EQ(s.diagnostics[i].line, i + 1);
        EXPECT_NE(s.diagnostics[i].reason.find(cases[i].reason_substr),
                  std::string::npos)
            << "row " << i << ": got '" << s.diagnostics[i].reason
            << "'";
    }
    EXPECT_TRUE(s.events.empty());
}

TEST(TraceAzure, StringVmIdsHashToDistinctInstances)
{
    std::string text = "ab12cd,0,100,interactive,4,8\n"
                       "ef34gh,0,100,interactive,4,8\n";
    trace::TraceStream s = parseAzure(text);
    ASSERT_EQ(s.rows_ok, 2u);
    ASSERT_GE(s.events.size(), 2u);
    EXPECT_NE(s.events[0].instance, s.events[1].instance);
}

// ---------------------------------------------------------------------
// Checked-in fixtures
// ---------------------------------------------------------------------

TEST(TraceFixtures, GoogleFixtureParsesWithExactDiagnostics)
{
    trace::TraceStream s = trace::parseGoogleTaskEventsFile(
        fixturePath("google_task_events.csv"));
    // tools/gen_trace_fixtures.py plants exactly 9 malformed rows.
    EXPECT_EQ(s.rows_rejected, 9u);
    EXPECT_EQ(s.diagnostics.size(), 9u);
    EXPECT_GT(s.rows_ok, 1000u);
    EXPECT_GT(s.events.size(), 500u);
    EXPECT_GT(s.rows_ignored, 0u);
    EXPECT_GT(s.spanSeconds(), 0.0);
}

TEST(TraceFixtures, AzureFixtureParsesWithExactDiagnostics)
{
    trace::TraceStream s =
        trace::parseAzureVmFile(fixturePath("azure_vmtable.csv"));
    // tools/gen_trace_fixtures.py plants exactly 7 malformed rows.
    EXPECT_EQ(s.rows_rejected, 7u);
    EXPECT_EQ(s.diagnostics.size(), 7u);
    EXPECT_GT(s.rows_ok, 800u);
    EXPECT_GT(s.events.size(), 1000u);
}

// ---------------------------------------------------------------------
// Mapper
// ---------------------------------------------------------------------

TEST(TraceMapper, ClassifiesByPriorityClassAndDemand)
{
    using K = trace::TraceEventKind;
    trace::TraceStream s = makeStream({
        ev(K::Arrival, 0.0, 1, 0.05, 0.1, /*prio=*/10, /*sched=*/0),
        ev(K::Arrival, 1.0, 2, 0.05, 0.1, /*prio=*/4, /*sched=*/3),
        ev(K::Arrival, 2.0, 3, 0.05, 0.1, /*prio=*/0, /*sched=*/0),
        ev(K::Arrival, 3.0, 4, 0.50, 0.1, /*prio=*/4, /*sched=*/1),
        ev(K::Arrival, 4.0, 5, 0.05, 0.1, /*prio=*/4, /*sched=*/1),
    });
    trace::TraceMapperConfig cfg;
    cfg.source_servers = 1.0;
    cfg.target_servers = 1; // population scale 1: no thin/clone.
    trace::MappedTrace m = trace::mapTrace(s, cfg);
    ASSERT_EQ(m.items.size(), 5u);
    EXPECT_EQ(m.items[0].cls, churn::ChurnClass::Service);
    EXPECT_EQ(m.items[1].cls, churn::ChurnClass::Service);
    EXPECT_EQ(m.items[2].cls, churn::ChurnClass::BestEffort);
    EXPECT_EQ(m.items[3].cls, churn::ChurnClass::Analytics);
    EXPECT_EQ(m.items[4].cls, churn::ChurnClass::SingleNode);
    EXPECT_EQ(m.mix.service, 2u);
    EXPECT_EQ(m.mix.best_effort, 1u);
    EXPECT_EQ(m.mix.analytics, 1u);
    EXPECT_EQ(m.mix.single_node, 1u);
}

TEST(TraceMapper, PairsInstancesAndCountsAnomalies)
{
    using K = trace::TraceEventKind;
    trace::TraceStream s = makeStream({
        ev(K::Arrival, 0.0, 1, 0.1, 0.1),
        ev(K::Resize, 10.0, 1, 0.2, 0.1),
        ev(K::Departure, 50.0, 1, 0.1, 0.1),
        ev(K::Arrival, 20.0, 2, 0.1, 0.1),   // never departs
        ev(K::Arrival, 30.0, 2, 0.1, 0.1),   // duplicate open
        ev(K::Departure, 40.0, 3, 0.1, 0.1), // never arrived
        ev(K::Resize, 45.0, 4, 0.1, 0.1),    // never arrived
        ev(K::Arrival, 100.0, 5, 0.1, 0.1),
    });
    trace::TraceMapperConfig cfg;
    cfg.source_servers = 1.0;
    cfg.target_servers = 1;
    cfg.target_horizon_s = 100.0; // same span: time scale 1.
    trace::MappedTrace m = trace::mapTrace(s, cfg);
    ASSERT_EQ(m.items.size(), 4u);
    EXPECT_EQ(m.duplicate_arrivals, 1u);
    EXPECT_EQ(m.unmatched_departures, 1u);
    EXPECT_EQ(m.unmatched_resizes, 1u);
    EXPECT_EQ(m.phase_changes, 1u);
    EXPECT_TRUE(m.items[0].phase_change);
    // Instance 1: closed at 50 in a 100 s span -> departs mid-run.
    EXPECT_GT(m.items[0].depart_s, 0.0);
    EXPECT_NEAR(m.items[0].depart_s - m.items[0].arrival_s, 50.0, 1e-9);
    // Open-ended instances run to completion.
    EXPECT_DOUBLE_EQ(m.items[1].depart_s, 0.0);
}

TEST(TraceMapper, RescalesTimeToTargetHorizon)
{
    using K = trace::TraceEventKind;
    trace::TraceStream s = makeStream({
        ev(K::Arrival, 1000.0, 1, 0.1, 0.1),
        ev(K::Departure, 2000.0, 1, 0.1, 0.1),
        ev(K::Arrival, 3000.0, 2, 0.1, 0.1),
    });
    trace::TraceMapperConfig cfg;
    cfg.source_servers = 1.0;
    cfg.target_servers = 1;
    cfg.target_horizon_s = 200.0; // 2000 s span -> x0.1
    trace::MappedTrace m = trace::mapTrace(s, cfg);
    ASSERT_EQ(m.items.size(), 2u);
    EXPECT_DOUBLE_EQ(m.time_scale, 0.1);
    EXPECT_DOUBLE_EQ(m.items[0].arrival_s, 0.0);
    EXPECT_DOUBLE_EQ(m.items[1].arrival_s, 200.0);
    EXPECT_NEAR(m.items[0].depart_s, 100.0, 1e-9);
}

TEST(TraceMapper, PopulationThinsAndClonesDeterministically)
{
    using K = trace::TraceEventKind;
    std::vector<trace::TraceEvent> events;
    for (uint64_t i = 0; i < 400; ++i)
        events.push_back(ev(K::Arrival, double(i), 1000 + i, 0.1, 0.1));
    trace::TraceStream s = makeStream(std::move(events));

    trace::TraceMapperConfig cfg;
    cfg.source_servers = 100.0;
    cfg.target_servers = 50; // x0.5: thin roughly in half.
    trace::MappedTrace thin = trace::mapTrace(s, cfg);
    EXPECT_GT(thin.items.size(), 120u);
    EXPECT_LT(thin.items.size(), 280u);

    cfg.target_servers = 300; // x3: every instance cloned 3x.
    trace::MappedTrace grown = trace::mapTrace(s, cfg);
    EXPECT_EQ(grown.items.size(), 1200u);

    // Pure function: identical (stream, config) -> identical result.
    trace::MappedTrace again = trace::mapTrace(s, cfg);
    ASSERT_EQ(again.items.size(), grown.items.size());
    for (size_t i = 0; i < grown.items.size(); ++i) {
        EXPECT_EQ(again.items[i].source_id, grown.items[i].source_id);
        EXPECT_DOUBLE_EQ(again.items[i].arrival_s,
                         grown.items[i].arrival_s);
        EXPECT_EQ(again.items[i].cls, grown.items[i].cls);
    }
    // Clones carry distinct ids and spread over the jitter window.
    EXPECT_NE(grown.items[0].source_id, grown.items[1].source_id);
}

TEST(TraceMapper, InfersSourceServersFromPeakConcurrentCpu)
{
    using K = trace::TraceEventKind;
    // Two overlapping instances of 0.5 CPU each: peak 1.0 machine.
    trace::TraceStream s = makeStream({
        ev(K::Arrival, 0.0, 1, 0.5, 0.1),
        ev(K::Arrival, 10.0, 2, 0.5, 0.1),
        ev(K::Departure, 20.0, 1, 0.5, 0.1),
        ev(K::Departure, 30.0, 2, 0.5, 0.1),
    });
    trace::TraceMapperConfig cfg;
    cfg.target_servers = 10;
    trace::MappedTrace m = trace::mapTrace(s, cfg);
    EXPECT_DOUBLE_EQ(m.source_servers, 1.0);
    EXPECT_DOUBLE_EQ(m.population_scale, 10.0);
}

// ---------------------------------------------------------------------
// Replay determinism
// ---------------------------------------------------------------------

namespace
{

/** Final simulated state of one replay run, for equality checks. */
struct ReplayRun
{
    std::vector<double> work_done;
    std::vector<bool> completed;
    std::vector<bool> killed;
    std::vector<std::vector<ServerId>> hosting;
    size_t scheduled = 0;
    size_t evictions = 0;
};

enum class Mode
{
    DirtySet,
    Cached,
    FullRescan,
};

ReplayRun
runReplayScenario(const trace::MappedTrace &mapped, Mode mode)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    cfg.seed = 7;
    cfg.scheduler.dirty_set = mode == Mode::DirtySet;
    cfg.scheduler.full_rescan = mode == Mode::FullRescan;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(8)};
    mgr.seedOffline(seeder, 12);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 10.0, .record_every = 4});

    trace::TraceReplayer replayer(mapped, /*seed=*/5);
    replayer.install(cluster, registry, drv);
    drv.run(mapped.horizon_s);

    ReplayRun r;
    for (const churn::ChurnItem &item : replayer.plan()) {
        const workload::Workload &w = registry.get(item.id);
        r.work_done.push_back(w.work_done);
        r.completed.push_back(w.completed);
        r.killed.push_back(w.killed);
        r.hosting.push_back(cluster.serversHosting(item.id));
    }
    r.scheduled = mgr.stats().scheduled;
    r.evictions = mgr.stats().evictions;
    return r;
}

void
expectSameReplayRun(const ReplayRun &a, const ReplayRun &b,
                    const std::string &ctx)
{
    ASSERT_EQ(a.work_done.size(), b.work_done.size()) << ctx;
    for (size_t i = 0; i < a.work_done.size(); ++i) {
        std::string wctx = ctx + " workload " + std::to_string(i);
        EXPECT_DOUBLE_EQ(a.work_done[i], b.work_done[i]) << wctx;
        EXPECT_EQ(a.completed[i], b.completed[i]) << wctx;
        EXPECT_EQ(a.killed[i], b.killed[i]) << wctx;
        EXPECT_EQ(a.hosting[i], b.hosting[i]) << wctx;
    }
    EXPECT_EQ(a.scheduled, b.scheduled) << ctx;
    EXPECT_EQ(a.evictions, b.evictions) << ctx;
}

trace::MappedTrace
mappedGoogleFixture()
{
    trace::TraceStream s = trace::parseGoogleTaskEventsFile(
        fixturePath("google_task_events.csv"));
    trace::TraceMapperConfig cfg;
    cfg.target_horizon_s = 240.0;
    cfg.target_servers = 40;
    cfg.seed = 11;
    return trace::mapTrace(s, cfg);
}

} // namespace

TEST(TraceReplay, AllSchedulerModesBitIdentical)
{
    trace::MappedTrace mapped = mappedGoogleFixture();
    ASSERT_GT(mapped.items.size(), 100u);
    ReplayRun full = runReplayScenario(mapped, Mode::FullRescan);
    ReplayRun dirty = runReplayScenario(mapped, Mode::DirtySet);
    ReplayRun cached = runReplayScenario(mapped, Mode::Cached);
    expectSameReplayRun(dirty, full, "dirty-vs-full");
    expectSameReplayRun(cached, full, "cached-vs-full");
    // The run only proves something if the trace actually churned.
    size_t finished = 0;
    for (size_t i = 0; i < full.completed.size(); ++i)
        if (full.completed[i] || full.killed[i])
            ++finished;
    EXPECT_GT(finished, 20u);
}

TEST(TraceReplay, ReReplayIsStable)
{
    trace::MappedTrace mapped = mappedGoogleFixture();
    ReplayRun first = runReplayScenario(mapped, Mode::DirtySet);
    ReplayRun second = runReplayScenario(mapped, Mode::DirtySet);
    expectSameReplayRun(first, second, "re-replay");
}

TEST(TraceReplay, PlanMirrorsMappedTrace)
{
    trace::MappedTrace mapped = mappedGoogleFixture();
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    core::QuasarManager mgr(cluster, registry, cfg);
    driver::ScenarioDriver drv(cluster, registry, mgr);
    trace::TraceReplayer replayer(mapped, 5);
    replayer.install(cluster, registry, drv);
    EXPECT_EQ(replayer.counts().arrivals, mapped.items.size());
    EXPECT_EQ(replayer.counts().departures_planned,
              mapped.departures_planned);
    EXPECT_EQ(replayer.counts().phase_changes, mapped.phase_changes);
    ASSERT_EQ(replayer.plan().size(), mapped.items.size());
    for (size_t i = 0; i < mapped.items.size(); ++i) {
        EXPECT_EQ(replayer.plan()[i].cls, mapped.items[i].cls);
        EXPECT_DOUBLE_EQ(replayer.plan()[i].arrival_s,
                         mapped.items[i].arrival_s);
    }
}

// ---------------------------------------------------------------------
// Synthesizer
// ---------------------------------------------------------------------

namespace
{

trace::MappedTrace
syntheticMapped(size_t n, double gap_s, double life_s,
                churn::ChurnClass cls, bool phase_every_4th = false)
{
    trace::MappedTrace m;
    m.horizon_s = double(n) * gap_s + life_s;
    for (size_t i = 0; i < n; ++i) {
        trace::MappedItem item;
        item.source_id = i;
        item.cls = cls;
        item.arrival_s = double(i) * gap_s;
        item.depart_s = item.arrival_s + life_s;
        item.phase_change = phase_every_4th && (i % 4 == 0);
        if (item.phase_change)
            ++m.phase_changes;
        ++m.departures_planned;
        m.items.push_back(item);
    }
    m.mix.single_node = cls == churn::ChurnClass::SingleNode ? n : 0;
    m.mix.analytics = cls == churn::ChurnClass::Analytics ? n : 0;
    m.mix.service = cls == churn::ChurnClass::Service ? n : 0;
    m.mix.best_effort = cls == churn::ChurnClass::BestEffort ? n : 0;
    return m;
}

} // namespace

TEST(TraceSynth, FitsRateMixPhaseFractionAndFixedLifetimes)
{
    trace::MappedTrace m = syntheticMapped(
        200, /*gap=*/2.0, /*life=*/120.0, churn::ChurnClass::Service,
        /*phase_every_4th=*/true);
    trace::SynthFit fit = trace::fitChurnConfig(m, /*seed=*/42);
    EXPECT_EQ(fit.config.seed, 42u);
    EXPECT_NEAR(fit.config.arrival_rate_per_s, 0.5, 1e-9);
    // Evenly spaced arrivals: zero dispersion -> Poisson pacing.
    EXPECT_EQ(fit.config.arrivals, churn::ArrivalKind::Poisson);
    EXPECT_DOUBLE_EQ(fit.config.mix.service, 1.0);
    EXPECT_DOUBLE_EQ(fit.config.mix.single_node, 0.0);
    EXPECT_NEAR(fit.config.phase_change_fraction, 0.25, 1e-9);
    // Constant 120 s lifetimes: CV 0 -> fixed spec at the mean.
    ASSERT_TRUE(fit.service.fitted);
    EXPECT_EQ(fit.config.service_lifetime.kind,
              tracegen::DurationSpec::Kind::Fixed);
    EXPECT_NEAR(fit.config.service_lifetime.mean_s, 120.0, 1e-9);
    EXPECT_DOUBLE_EQ(fit.config.horizon_s, m.horizon_s);
}

TEST(TraceSynth, HeavyTailedGapsSwitchToPareto)
{
    // Mice-and-elephants gaps: mostly 1 s, occasionally 300 s. The
    // CV blows past the Poisson band and the fit goes heavy-tailed.
    trace::MappedTrace m;
    double t = 0.0;
    for (size_t i = 0; i < 300; ++i) {
        trace::MappedItem item;
        item.source_id = i;
        item.cls = churn::ChurnClass::SingleNode;
        item.arrival_s = t;
        m.items.push_back(item);
        t += (i % 25 == 24) ? 300.0 : 1.0;
        ++m.mix.single_node;
    }
    m.horizon_s = t;
    trace::SynthFit fit = trace::fitChurnConfig(m, 1);
    EXPECT_GT(fit.arrival_gap_cv, 1.2);
    EXPECT_EQ(fit.config.arrivals, churn::ArrivalKind::Pareto);
    EXPECT_GT(fit.config.pareto_alpha, 1.0);
    EXPECT_LE(fit.config.pareto_alpha, 3.0);
}

TEST(TraceSynth, TooFewSamplesKeepsEngineDefaults)
{
    trace::MappedTrace m = syntheticMapped(
        3, 10.0, 50.0, churn::ChurnClass::Analytics);
    churn::ChurnConfig defaults;
    trace::SynthFit fit = trace::fitChurnConfig(m, 1);
    EXPECT_FALSE(fit.analytics.fitted);
    EXPECT_EQ(fit.config.analytics_lifetime.kind,
              defaults.analytics_lifetime.kind);
    EXPECT_DOUBLE_EQ(fit.config.analytics_lifetime.mean_s,
                     defaults.analytics_lifetime.mean_s);
}

TEST(TraceSynth, EmptyTraceYieldsDefaultsWithoutCrashing)
{
    trace::MappedTrace empty;
    trace::SynthFit fit = trace::fitChurnConfig(empty, 9, 500.0);
    EXPECT_EQ(fit.arrivals, 0u);
    EXPECT_DOUBLE_EQ(fit.config.horizon_s, 500.0);
}

// ---------------------------------------------------------------------
// Closed-loop churn
// ---------------------------------------------------------------------

namespace
{

struct ClosedLoopRun
{
    std::vector<double> arrivals;
    std::vector<churn::ChurnClass> classes;
    size_t deferrals = 0;
};

ClosedLoopRun
runClosedLoop(uint64_t seed, double rate, size_t target)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    cfg.seed = 7;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(8)};
    mgr.seedOffline(seeder, 12);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});

    churn::ChurnConfig ccfg;
    ccfg.seed = seed;
    ccfg.arrival_rate_per_s = rate;
    ccfg.horizon_s = 300.0;
    ccfg.closed_loop = true;
    ccfg.closed_loop_target = target;
    churn::ChurnEngine engine(ccfg);
    engine.setDepthProbe([&mgr] { return mgr.admission().size(); });
    engine.install(cluster, registry, drv);
    drv.run(ccfg.horizon_s);

    ClosedLoopRun r;
    for (const churn::ChurnItem &item : engine.plan()) {
        r.arrivals.push_back(item.arrival_s);
        r.classes.push_back(item.cls);
    }
    r.deferrals = engine.deferrals();
    return r;
}

} // namespace

TEST(ChurnClosedLoop, BackpressureDefersArrivalsUnderSaturation)
{
    // 2 arrivals/s at 40 servers floods the admission queue; a
    // closed-loop target of 10 must start deferring, and the tight
    // loop must admit strictly fewer tenants than a loose one.
    ClosedLoopRun tight = runClosedLoop(3, 2.0, 10);
    ClosedLoopRun loose = runClosedLoop(3, 2.0, 100000);
    EXPECT_GT(tight.deferrals, 0u);
    EXPECT_EQ(loose.deferrals, 0u);
    EXPECT_LT(tight.arrivals.size(), loose.arrivals.size());
    EXPECT_EQ(tight.arrivals.size() + tight.deferrals,
              loose.arrivals.size() + loose.deferrals);
}

TEST(ChurnClosedLoop, SeededDeterminism)
{
    // Identical (config, seed, manager) must replay the identical
    // stream: same arrival instants, same classes, same deferrals.
    ClosedLoopRun a = runClosedLoop(5, 2.0, 10);
    ClosedLoopRun b = runClosedLoop(5, 2.0, 10);
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
    for (size_t i = 0; i < a.arrivals.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.arrivals[i], b.arrivals[i]) << i;
        EXPECT_EQ(a.classes[i], b.classes[i]) << i;
    }
    EXPECT_EQ(a.deferrals, b.deferrals);
}

TEST(ChurnClosedLoop, WithoutProbeMatchesOpenLoopStream)
{
    // No depth probe: the closed loop never defers, and its lazily
    // generated stream must equal the open-loop plan for the same
    // seed (same forked RNG streams, consumed in the same order).
    churn::ChurnConfig base;
    base.seed = 21;
    base.arrival_rate_per_s = 0.4;
    base.horizon_s = 200.0;

    auto runStream = [&](bool closed) {
        sim::Cluster cluster = sim::Cluster::localCluster();
        workload::WorkloadRegistry registry;
        core::QuasarConfig cfg;
        core::QuasarManager mgr(cluster, registry, cfg);
        driver::ScenarioDriver drv(cluster, registry, mgr);
        churn::ChurnConfig ccfg = base;
        ccfg.closed_loop = closed;
        churn::ChurnEngine engine(ccfg);
        engine.install(cluster, registry, drv);
        if (closed)
            drv.run(ccfg.horizon_s); // lazy generation needs the run
        std::vector<std::pair<double, churn::ChurnClass>> out;
        for (const churn::ChurnItem &item : engine.plan())
            out.emplace_back(item.arrival_s, item.cls);
        return out;
    };
    auto open = runStream(false);
    auto closed = runStream(true);
    ASSERT_EQ(open.size(), closed.size());
    for (size_t i = 0; i < open.size(); ++i) {
        EXPECT_DOUBLE_EQ(open[i].first, closed[i].first) << i;
        EXPECT_EQ(open[i].second, closed[i].second) << i;
    }
}

// ---------------------------------------------------------------------
// Hosting index + active-list fast paths
// ---------------------------------------------------------------------

TEST(HostingIndex, TracksPlacementsRemovalsAndCrashes)
{
    sim::Cluster c = sim::Cluster::localCluster();
    EXPECT_TRUE(c.busyServers().empty());

    sim::TaskShare share;
    share.workload = 3;
    share.cores = 1;
    c.server(5).place(share);
    c.server(2).place(share);
    share.workload = 4;
    c.server(5).place(share);

    EXPECT_EQ(c.serversHosting(3), (std::vector<ServerId>{2, 5}));
    EXPECT_EQ(c.serversHosting(4), (std::vector<ServerId>{5}));
    EXPECT_EQ(c.busyServers(), (std::vector<ServerId>{2, 5}));
    EXPECT_EQ(c.hostingIndex().hostedWorkloads(), 2u);

    EXPECT_EQ(c.removeEverywhere(3), 2u);
    EXPECT_TRUE(c.serversHosting(3).empty());
    EXPECT_EQ(c.busyServers(), (std::vector<ServerId>{5}));

    c.server(5).markDown(); // crash drops the remaining share.
    EXPECT_TRUE(c.serversHosting(4).empty());
    EXPECT_TRUE(c.busyServers().empty());
    EXPECT_EQ(c.hostingIndex().hostedWorkloads(), 0u);
}

TEST(HostingIndex, MatchesDirectScanAfterAReplayRun)
{
    trace::MappedTrace mapped = mappedGoogleFixture();
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarConfig cfg;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(8)};
    mgr.seedOffline(seeder, 12);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0});
    trace::TraceReplayer replayer(mapped, 5);
    replayer.install(cluster, registry, drv);
    drv.run(mapped.horizon_s);

    // Release-mode mirror of the QUASAR_VERIFY sweep: the maintained
    // index must equal a direct scan, entry for entry, order and all.
    std::vector<ServerId> busy_scan;
    for (size_t s = 0; s < cluster.size(); ++s)
        if (!cluster.server(ServerId(s)).tasks().empty())
            busy_scan.push_back(ServerId(s));
    EXPECT_EQ(cluster.busyServers(), busy_scan);
    for (WorkloadId id : registry.all()) {
        std::vector<ServerId> scan;
        for (size_t s = 0; s < cluster.size(); ++s)
            if (cluster.server(ServerId(s)).hosts(id))
                scan.push_back(ServerId(s));
        EXPECT_EQ(cluster.serversHosting(id), scan) << "workload " << id;
    }
}

TEST(WorkloadRegistry, ActiveListCompactsFinishedWorkloads)
{
    workload::WorkloadRegistry registry;
    workload::WorkloadFactory factory{stats::Rng(3)};
    for (int i = 0; i < 5; ++i)
        registry.add(factory.bestEffortJob("wl"));
    EXPECT_EQ(registry.active(),
              (std::vector<WorkloadId>{0, 1, 2, 3, 4}));
    registry.get(1).completed = true;
    registry.get(3).killed = true;
    EXPECT_EQ(registry.active(), (std::vector<WorkloadId>{0, 2, 4}));
    // Stable across repeated calls, and new arrivals append.
    EXPECT_EQ(registry.active(), (std::vector<WorkloadId>{0, 2, 4}));
    registry.add(factory.bestEffortJob("wl"));
    EXPECT_EQ(registry.active(),
              (std::vector<WorkloadId>{0, 2, 4, 5}));
}
