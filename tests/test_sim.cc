/**
 * @file
 * Tests for the discrete-event engine and the cluster model: event
 * ordering and cancellation, the Table 1 platform catalogs, server
 * placement/accounting/contention, and cluster aggregation.
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "sim/event_queue.hh"

using namespace quasar;
using namespace quasar::sim;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    EXPECT_EQ(q.eventsRun(), 3u);
}

TEST(EventQueue, FifoTieBreakAtSameTime)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsClock)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] { ++fired; });
    q.schedule(5.0, [&] { ++fired; });
    q.run(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.schedule(1.0, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    q.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleAfter(1.0, chain);
    };
    q.schedule(0.0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, CancelledEventInsideWindowDoesNotBreachHorizon)
{
    // Regression: run(until) used to judge the horizon against the
    // raw heap top. With a cancelled event inside the window ahead of
    // a live event beyond it, step() would skip the cancelled entry
    // and fire the out-of-window event.
    EventQueue q;
    int fired = 0;
    EventHandle inside = q.schedule(1.0, [&] { ++fired; });
    q.schedule(5.0, [&] { ++fired; });
    inside.cancel();
    q.run(2.0);
    EXPECT_EQ(fired, 0);
    EXPECT_DOUBLE_EQ(q.now(), 0.0); // clock never moved
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, FifoSurvivesInterleavedCancellationAtSameTime)
{
    // Identical-timestamp events must keep firing in insertion order
    // even when some of the batch are cancelled between them.
    EventQueue q;
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 8; ++i)
        handles.push_back(
            q.schedule(1.0, [&order, i] { order.push_back(i); }));
    handles[0].cancel();
    handles[3].cancel();
    handles[7].cancel();
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5, 6}));
    EXPECT_EQ(q.eventsRun(), 5u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyPrunesWithoutDroppingLiveEvents)
{
    EventQueue q;
    int fired = 0;
    EventHandle a = q.schedule(1.0, [&] { ++fired; });
    q.schedule(2.0, [&] { ++fired; });
    a.cancel();
    EXPECT_FALSE(q.empty()); // prunes the cancelled top only
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.empty());
}

TEST(Platform, LocalCatalogMatchesTable1)
{
    auto catalog = localPlatforms();
    ASSERT_EQ(catalog.size(), 10u);
    // Table 1: A(2c/4GB) ... J(24c/48GB).
    EXPECT_EQ(catalog[0].name, "A");
    EXPECT_EQ(catalog[0].cores, 2);
    EXPECT_DOUBLE_EQ(catalog[0].memory_gb, 4.0);
    EXPECT_EQ(catalog[9].name, "J");
    EXPECT_EQ(catalog[9].cores, 24);
    EXPECT_DOUBLE_EQ(catalog[9].memory_gb, 48.0);
    // Core speed is graded upward.
    EXPECT_LT(catalog[0].core_perf, catalog[9].core_perf);
}

TEST(Platform, Ec2CatalogHas14Types)
{
    auto catalog = ec2Platforms();
    EXPECT_EQ(catalog.size(), 14u);
    for (const Platform &p : catalog) {
        EXPECT_GT(p.cores, 0);
        EXPECT_GT(p.memory_gb, 0.0);
        for (double c : p.contention_capacity)
            EXPECT_GT(c, 0.0);
    }
}

TEST(Platform, HighestEndIsJ)
{
    auto catalog = localPlatforms();
    EXPECT_EQ(catalog[highestEndPlatform(catalog)].name, "J");
}

TEST(Platform, LookupByName)
{
    auto catalog = localPlatforms();
    EXPECT_EQ(platformByName(catalog, "D").cores, 8);
}

namespace
{

Server
makeServer(char name = 'J')
{
    auto catalog = localPlatforms();
    return Server(0, platformByName(catalog, std::string(1, name)));
}

sim::TaskShare
makeShare(WorkloadId id, int cores, double mem, bool be = false)
{
    sim::TaskShare s;
    s.workload = id;
    s.cores = cores;
    s.memory_gb = mem;
    s.storage_gb = 1.0;
    s.best_effort = be;
    s.caused = interference::zeroVector();
    return s;
}

} // namespace

TEST(Server, PlacementAccounting)
{
    Server srv = makeServer();
    EXPECT_TRUE(srv.canFit(24, 48.0, 100.0));
    srv.place(makeShare(1, 8, 16.0));
    EXPECT_TRUE(srv.hosts(1));
    EXPECT_EQ(srv.coresAllocated(), 8);
    EXPECT_EQ(srv.coresFree(), 16);
    EXPECT_DOUBLE_EQ(srv.memoryFree(), 32.0);
    EXPECT_FALSE(srv.canFit(17, 1.0, 0.0));
    EXPECT_TRUE(srv.remove(1));
    EXPECT_FALSE(srv.remove(1));
    EXPECT_EQ(srv.coresAllocated(), 0);
}

TEST(Server, ResizeAdjustsCapacityAndPressure)
{
    Server srv = makeServer();
    sim::TaskShare s = makeShare(1, 4, 8.0);
    s.caused[0] = 0.4;
    srv.place(s);
    EXPECT_TRUE(srv.resize(1, 8, 16.0));
    const sim::TaskShare *got = srv.share(1);
    EXPECT_EQ(got->cores, 8);
    // Pressure scales with the core share.
    EXPECT_DOUBLE_EQ(got->caused[0], 0.8);
    // Cannot grow past platform capacity.
    EXPECT_FALSE(srv.resize(1, 25, 16.0));
}

TEST(Server, ContentionExcludesSelfAndNormalizes)
{
    Server srv = makeServer();
    sim::TaskShare a = makeShare(1, 4, 8.0);
    a.caused[2] = 1.0;
    sim::TaskShare b = makeShare(2, 4, 8.0);
    b.caused[2] = 2.0;
    srv.place(a);
    srv.place(b);
    double cap = srv.platform().contention_capacity[2];
    EXPECT_NEAR(srv.contentionFor(1)[2], 2.0 / cap, 1e-12);
    EXPECT_NEAR(srv.contentionFor(2)[2], 1.0 / cap, 1e-12);
    EXPECT_NEAR(srv.contentionForNewcomer()[2], 3.0 / cap, 1e-12);
}

TEST(Server, InjectedPressureIsNormalizedInput)
{
    Server srv = makeServer();
    auto v = interference::zeroVector();
    v[1] = 0.5; // normalized intensity
    srv.injectPressure(v);
    EXPECT_NEAR(srv.contentionForNewcomer()[1], 0.5, 1e-12);
    srv.clearInjectedPressure();
    EXPECT_DOUBLE_EQ(srv.contentionForNewcomer()[1], 0.0);
}

TEST(Server, UsageAndUtilization)
{
    Server srv = makeServer();
    srv.place(makeShare(1, 12, 24.0));
    EXPECT_TRUE(srv.setUsage(1, 6.0));
    EXPECT_DOUBLE_EQ(srv.cpuUtilization(), 6.0 / 24.0);
    EXPECT_DOUBLE_EQ(srv.cpuReservedFraction(), 0.5);
    EXPECT_DOUBLE_EQ(srv.memoryUtilization(), 0.5);
    // Usage clamps to the allocation.
    srv.setUsage(1, 99.0);
    EXPECT_DOUBLE_EQ(srv.cpuUtilization(), 0.5);
    EXPECT_FALSE(srv.setUsage(42, 1.0));
}

TEST(Server, BestEffortListing)
{
    Server srv = makeServer();
    srv.place(makeShare(1, 2, 2.0, true));
    srv.place(makeShare(2, 2, 2.0, false));
    srv.place(makeShare(3, 2, 2.0, true));
    auto be = srv.bestEffortTasks();
    EXPECT_EQ(be, (std::vector<WorkloadId>{1, 3}));
}

TEST(Cluster, LocalBuilder)
{
    Cluster c = Cluster::localCluster();
    EXPECT_EQ(c.size(), 40u);
    EXPECT_EQ(c.serversOfPlatform("A").size(), 4u);
    EXPECT_EQ(c.serversOfPlatform("J").size(), 4u);
    int expect_cores = 4 * (2 + 4 + 8 + 8 + 8 + 8 + 12 + 12 + 16 + 24);
    EXPECT_EQ(c.totalCores(), expect_cores);
}

TEST(Cluster, Ec2BuilderHas200Servers)
{
    Cluster c = Cluster::ec2Cluster();
    EXPECT_EQ(c.size(), 200u);
}

TEST(Cluster, HostingAndRemoveEverywhere)
{
    Cluster c = Cluster::localCluster();
    c.server(0).place(makeShare(7, 1, 1.0));
    c.server(5).place(makeShare(7, 1, 1.0));
    EXPECT_EQ(c.serversHosting(7),
              (std::vector<ServerId>{0, 5}));
    EXPECT_EQ(c.removeEverywhere(7), 2u);
    EXPECT_TRUE(c.serversHosting(7).empty());
}

TEST(Cluster, SnapshotAggregates)
{
    Cluster c = Cluster::localCluster();
    c.server(39).place(makeShare(1, 24, 48.0)); // platform J full
    c.server(39).setUsage(1, 12.0);
    ClusterSnapshot snap = c.snapshot();
    EXPECT_NEAR(snap.cpu_reserved, 24.0 / c.totalCores(), 1e-12);
    EXPECT_NEAR(snap.cpu_used, 12.0 / c.totalCores(), 1e-12);
    EXPECT_NEAR(snap.mem_used, 48.0 / c.totalMemoryGb(), 1e-12);
}
