/**
 * @file
 * Tests for the runtime-control pieces: monitor measurement and
 * alerts, phase probing, the admission queue's wait accounting, and
 * the straggler detectors.
 */

#include <gtest/gtest.h>

#include "core/admission.hh"
#include "core/classifier.hh"
#include "core/monitor.hh"
#include "core/straggler.hh"
#include "workload/factory.hh"

using namespace quasar;
using namespace quasar::core;
using workload::Workload;

namespace
{

struct World
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    workload::WorkloadFactory factory{stats::Rng(61)};

    WorkloadId placeBatch(double target_rate_scale)
    {
        Workload w = factory.hadoopJob("j", 30.0);
        WorkloadId id = registry.add(w);
        sim::TaskShare share;
        share.workload = id;
        share.cores = 8;
        share.memory_gb = 16.0;
        share.caused =
            registry.get(id).causedPressure(0.0, share.cores);
        cluster.server(36).place(share); // a J box
        workload::PerfOracle oracle(cluster, registry);
        double rate = oracle.currentRate(registry.get(id), 0.0);
        registry.get(id).total_work = 1e18;
        registry.get(id).target =
            workload::PerformanceTarget::ips(rate * target_rate_scale);
        return id;
    }
};

} // namespace

TEST(Monitor, NoAlertWhenOnTarget)
{
    World w;
    WorkloadId id = w.placeBatch(1.0);
    MonitorConfig cfg;
    cfg.noise_sigma = 0.0;
    Monitor m(w.cluster, w.registry, cfg, stats::Rng(1));
    EXPECT_EQ(m.check(w.registry.get(id), 0.0), Alert::None);
    EXPECT_NEAR(m.measure(w.registry.get(id), 0.0), 1.0, 1e-9);
}

TEST(Monitor, UnderperformAlert)
{
    World w;
    WorkloadId id = w.placeBatch(2.0); // target is twice the delivery
    MonitorConfig cfg;
    cfg.noise_sigma = 0.0;
    Monitor m(w.cluster, w.registry, cfg, stats::Rng(1));
    EXPECT_EQ(m.check(w.registry.get(id), 0.0),
              Alert::Underperforming);
}

TEST(Monitor, OverprovisionAlert)
{
    World w;
    WorkloadId id = w.placeBatch(0.5); // delivering twice the target
    MonitorConfig cfg;
    cfg.noise_sigma = 0.0;
    Monitor m(w.cluster, w.registry, cfg, stats::Rng(1));
    EXPECT_EQ(m.check(w.registry.get(id), 0.0),
              Alert::Overprovisioned);
}

TEST(Monitor, NoisyMeasurementStaysClose)
{
    World w;
    WorkloadId id = w.placeBatch(1.0);
    MonitorConfig cfg;
    cfg.noise_sigma = 0.05;
    Monitor m(w.cluster, w.registry, cfg, stats::Rng(1));
    stats::Samples s;
    for (int i = 0; i < 300; ++i)
        s.add(m.measure(w.registry.get(id), 0.0));
    EXPECT_NEAR(s.mean(), 1.0, 0.02);
    EXPECT_GT(s.stddev(), 0.01);
}

TEST(Monitor, PhaseProbeFiresOnCoherentShift)
{
    World w;
    profiling::Profiler profiler(w.cluster.catalog(), {});
    Classifier clf(profiler, {}, 2);
    std::vector<Workload> seeds;
    for (int i = 0; i < 10; ++i)
        seeds.push_back(
            w.factory.hadoopJob("s", w.factory.rng().uniform(5, 150)));
    clf.seedOffline(seeds, 0.0);

    Workload job = w.factory.hadoopJob("j", 40.0);
    WorkloadId id = w.registry.add(job);
    Workload &live = w.registry.get(id);
    stats::Rng rng(3);
    auto data = profiler.profile(live, 0.0, rng);
    auto est = clf.classify(live, data);

    Monitor m(w.cluster, w.registry, {}, stats::Rng(4));
    // Large coherent shift in the true tolerance.
    live.phase_truth = live.truth;
    for (size_t i = 0; i < interference::kNumSources; ++i)
        live.phase_truth.sensitivity.threshold[i] = std::clamp(
            live.phase_truth.sensitivity.threshold[i] - 0.5, 0.05,
            0.98);
    live.phase_change_time = 100.0;
    EXPECT_TRUE(m.probePhaseChange(live, est, profiler, 150.0));
}

TEST(Admission, FifoDrainAndWaitAccounting)
{
    AdmissionQueue q;
    EXPECT_TRUE(q.empty());
    q.enqueue(1, 10.0);
    q.enqueue(2, 20.0);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_TRUE(q.contains(1));

    auto retry = q.drainForRetry();
    EXPECT_EQ(retry, (std::vector<WorkloadId>{1, 2}));
    // 1 admitted at t = 50: waited 40.
    q.admitted(1, 50.0);
    // 2 fails again -> re-enqueued with the ORIGINAL wait start.
    q.enqueue(2, 50.0);
    auto retry2 = q.drainForRetry();
    EXPECT_EQ(retry2, (std::vector<WorkloadId>{2}));
    q.admitted(2, 100.0);
    // Waits: 40 and 80.
    EXPECT_EQ(q.waitTimes().count(), 2u);
    EXPECT_DOUBLE_EQ(q.waitTimes().mean(), 60.0);
    EXPECT_TRUE(q.empty());
}

TEST(Admission, AdmittedWithoutQueueingIsNoop)
{
    AdmissionQueue q;
    q.admitted(9, 5.0);
    EXPECT_EQ(q.waitTimes().count(), 0u);
}

TEST(Straggler, WaveConstruction)
{
    stats::Rng rng(7);
    auto wave = TaskWave::make(rng, 100, 300.0, 0.1, 3.0);
    EXPECT_EQ(wave.tasks.size(), 100u);
    size_t stragglers = 0;
    for (const auto &t : wave.tasks) {
        EXPECT_GT(t.duration, 0.0);
        if (t.straggler) {
            ++stragglers;
            EXPECT_GT(t.duration, 2.0 * 300.0);
        }
    }
    EXPECT_GT(stragglers, 0u);
    EXPECT_LT(stragglers, 30u);
}

TEST(Straggler, ProgressClampedAndLinear)
{
    MapTask t;
    t.duration = 100.0;
    EXPECT_DOUBLE_EQ(t.progressAt(50.0), 0.5);
    EXPECT_DOUBLE_EQ(t.progressAt(500.0), 1.0);
}

TEST(Straggler, QuasarEarlierThanLateEarlierThanHadoop)
{
    stats::Rng rng(8);
    DetectorConfig cfg;
    double h = 0.0, l = 0.0, q = 0.0;
    int n = 0;
    for (int i = 0; i < 10; ++i) {
        auto wave = TaskWave::make(rng, 60, 300.0, 0.1, 3.0);
        auto dh = detectHadoop(wave, cfg, rng);
        auto dl = detectLate(wave, cfg, rng);
        auto dq = detectQuasar(wave, cfg, rng);
        if (dh.meanDetectTime() > 0 && dl.meanDetectTime() > 0 &&
            dq.meanDetectTime() > 0) {
            h += dh.meanDetectTime();
            l += dl.meanDetectTime();
            q += dq.meanDetectTime();
            ++n;
        }
    }
    ASSERT_GT(n, 5);
    EXPECT_LT(q, l);
    EXPECT_LT(l, h);
}

TEST(Straggler, QuasarProbeFiltersFalsePositives)
{
    stats::Rng rng(9);
    DetectorConfig cfg;
    cfg.progress_noise = 0.3; // very noisy reports
    size_t q_fp = 0;
    for (int i = 0; i < 10; ++i) {
        auto wave = TaskWave::make(rng, 60, 300.0, 0.08, 3.0);
        q_fp += detectQuasar(wave, cfg, rng).falsePositives(wave);
    }
    EXPECT_EQ(q_fp, 0u); // the confirmation probe rejects them all
}

TEST(Straggler, RecallNearPerfectAtThreeX)
{
    stats::Rng rng(10);
    DetectorConfig cfg;
    auto wave = TaskWave::make(rng, 100, 300.0, 0.1, 3.0);
    EXPECT_GE(detectHadoop(wave, cfg, rng).recall(wave), 0.9);
    EXPECT_GE(detectQuasar(wave, cfg, rng).recall(wave), 0.9);
}
