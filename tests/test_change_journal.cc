/**
 * @file
 * Edge cases of the sim::ChangeJournal and the scheduler's dirty-set
 * cursor riding it: bounded-log compaction semantics, a laggard
 * reader whose cursor falls off the retained window (must fall back
 * to a full scan, not read stale state), cursors created mid-stream,
 * and journal-driven placement across clusters with different
 * platform catalogs (the cached platform indices must stay coherent
 * with each catalog).
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/classifier.hh"
#include "core/scheduler.hh"
#include "profiling/profiler.hh"
#include "sim/change_journal.hh"
#include "sim/cluster.hh"
#include "workload/factory.hh"

using namespace quasar;
using core::Allocation;
using core::GreedyScheduler;
using core::SchedulerConfig;
using core::WorkloadEstimate;
using workload::Workload;

namespace
{

void
expectSameAllocation(const std::optional<Allocation> &a,
                     const std::optional<Allocation> &b,
                     const std::string &ctx)
{
    ASSERT_EQ(a.has_value(), b.has_value()) << ctx;
    if (!a)
        return;
    EXPECT_EQ(a->degraded, b->degraded) << ctx;
    EXPECT_DOUBLE_EQ(a->predicted_perf, b->predicted_perf) << ctx;
    ASSERT_EQ(a->nodes.size(), b->nodes.size()) << ctx;
    for (size_t i = 0; i < a->nodes.size(); ++i) {
        EXPECT_EQ(a->nodes[i].server, b->nodes[i].server) << ctx;
        EXPECT_EQ(a->nodes[i].scale_up_col, b->nodes[i].scale_up_col)
            << ctx;
        EXPECT_EQ(a->nodes[i].cores, b->nodes[i].cores) << ctx;
        EXPECT_DOUBLE_EQ(a->nodes[i].memory_gb, b->nodes[i].memory_gb)
            << ctx;
    }
    ASSERT_EQ(a->evictions.size(), b->evictions.size()) << ctx;
    for (size_t i = 0; i < a->evictions.size(); ++i)
        EXPECT_EQ(a->evictions[i], b->evictions[i]) << ctx;
}

/** Classifier world bound to a given cluster (same idiom as the
 *  decision-path sweep tests). */
struct JournalWorld
{
    sim::Cluster cluster;
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler;
    core::Classifier clf;
    workload::WorkloadFactory factory;
    stats::Rng rng;

    explicit JournalWorld(sim::Cluster c, uint64_t seed = 11)
        : cluster(std::move(c)), profiler{cluster.catalog(), {}},
          clf{profiler, {}, 3}, factory{stats::Rng(seed)}, rng{seed + 1}
    {
        std::vector<Workload> seeds;
        for (int i = 0; i < 5; ++i)
            seeds.push_back(factory.hadoopJob(
                "seed", factory.rng().uniform(5.0, 150.0)));
        static const char *fams[] = {"spec-int", "parsec", "specjbb",
                                     "mix"};
        for (int i = 0; i < 6; ++i)
            seeds.push_back(factory.singleNodeJob("seed", fams[i % 4]));
        clf.seedOffline(seeds, 0.0);
    }

    std::pair<WorkloadId, WorkloadEstimate> make(Workload w)
    {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return {id, clf.classify(registry.get(id), data)};
    }

    void apply(WorkloadId id, const Allocation &alloc)
    {
        Workload &w = registry.get(id);
        for (const auto &[sid, victim] : alloc.evictions)
            cluster.server(sid).remove(victim);
        for (const auto &node : alloc.nodes) {
            sim::TaskShare share;
            share.workload = id;
            share.cores = node.cores;
            share.memory_gb = node.memory_gb;
            share.storage_gb = w.storage_gb_per_node;
            share.caused = w.causedPressure(0.0, node.cores);
            share.best_effort = w.best_effort;
            cluster.server(node.server).place(share);
        }
    }
};

} // namespace

// ---------------------------------------------------------------------
// ChangeJournal unit semantics
// ---------------------------------------------------------------------

TEST(ChangeJournal, BoundedLogCompactsAndKeepsAbsoluteOffsets)
{
    sim::ChangeJournal j(16);
    EXPECT_EQ(j.base(), 0u);
    EXPECT_EQ(j.end(), 0u);

    for (ServerId id = 0; id < 40; ++id)
        j.note(id);

    // Compaction drops the oldest half when full, but offsets are
    // absolute and the total note count is monotone.
    EXPECT_EQ(j.totalNoted(), 40u);
    EXPECT_EQ(j.end(), 40u);
    EXPECT_GT(j.base(), 0u);
    EXPECT_LE(j.end() - j.base(), 16u);
    for (uint64_t pos = j.base(); pos < j.end(); ++pos)
        EXPECT_EQ(j.at(pos), ServerId(pos)); // ids were 0..39 in order
}

TEST(ChangeJournal, TinyCapacityIsClampedToFloor)
{
    sim::ChangeJournal j(1); // floor is 16
    for (ServerId id = 0; id < 16; ++id)
        j.note(id);
    // No compaction needed yet: all 16 retained.
    EXPECT_EQ(j.base(), 0u);
    EXPECT_EQ(j.end(), 16u);
}

TEST(ChangeJournal, RingWrapsManyTimesAgainstReferenceModel)
{
    // The ring's head/base arithmetic must agree with the dumbest
    // possible reference (a deque that drops its front half when
    // full) across many wrap-arounds and at every intermediate state.
    sim::ChangeJournal j(16);
    std::vector<ServerId> model; // retained window, oldest first
    uint64_t model_base = 0;
    for (int i = 0; i < 1000; ++i) {
        ServerId id = ServerId((i * 7) % 101);
        if (model.size() == 16) {
            model.erase(model.begin(), model.begin() + 8);
            model_base += 8;
        }
        model.push_back(id);
        j.note(id);

        ASSERT_EQ(j.base(), model_base) << "after note " << i;
        ASSERT_EQ(j.end(), model_base + model.size())
            << "after note " << i;
        for (size_t k = 0; k < model.size(); ++k)
            ASSERT_EQ(j.at(model_base + k), model[k])
                << "after note " << i << " at window pos " << k;
    }
    EXPECT_EQ(j.totalNoted(), 1000u);
}

TEST(ChangeJournal, CompactionKeepsNewestHalfExactly)
{
    sim::ChangeJournal j(32);
    for (ServerId id = 0; id < 33; ++id)
        j.note(id); // the 33rd note triggers the first compaction
    EXPECT_EQ(j.base(), 16u);
    EXPECT_EQ(j.end(), 33u);
    for (uint64_t pos = j.base(); pos < j.end(); ++pos)
        EXPECT_EQ(j.at(pos), ServerId(pos));
}

TEST(ChangeJournal, FreshReaderStartsAtEndAndMissesNothingNew)
{
    sim::ChangeJournal j(64);
    for (ServerId id = 0; id < 10; ++id)
        j.note(id);
    uint64_t cursor = j.end(); // reader created mid-stream
    j.note(77);
    j.note(78);
    std::vector<ServerId> seen;
    for (uint64_t pos = cursor; pos < j.end(); ++pos)
        seen.push_back(j.at(pos));
    EXPECT_EQ(seen, (std::vector<ServerId>{77, 78}));
}

// ---------------------------------------------------------------------
// Scheduler cursor edge cases
// ---------------------------------------------------------------------

TEST(ChangeJournal, LaggardSchedulerCursorFallsBackToFullScan)
{
    JournalWorld w(sim::Cluster::localCluster());
    SchedulerConfig dirty_cfg;     // dirty_set is the default
    SchedulerConfig rescan_cfg;
    rescan_cfg.full_rescan = true;

    GreedyScheduler dirty(w.cluster, dirty_cfg);
    GreedyScheduler rescan(w.cluster, rescan_cfg);

    // Prime the dirty index with one decision, then commit it.
    auto [id0, est0] = w.make(w.factory.hadoopJob("warm", 40.0));
    auto a0 = dirty.allocate(w.registry.get(id0), est0, 40.0, nullptr,
                             false);
    expectSameAllocation(a0,
                         rescan.allocate(w.registry.get(id0), est0,
                                         40.0, nullptr, false),
                         "warmup");
    ASSERT_TRUE(a0.has_value());
    w.apply(id0, *a0);

    // Storm the journal far past its capacity so compaction advances
    // base() beyond the primed scheduler's cursor: every injected
    // pressure toggle bumps a server version and appends an entry.
    const uint64_t before_base = w.cluster.journal().base();
    interference::IVector poke = interference::zeroVector();
    poke[0] = 0.05;
    for (int round = 0; round < 80; ++round) {
        for (size_t s = 0; s < w.cluster.size(); ++s) {
            w.cluster.server(ServerId(s)).injectPressure(poke);
            w.cluster.server(ServerId(s)).clearInjectedPressure();
        }
    }
    ASSERT_GT(w.cluster.journal().base(), before_base)
        << "storm was not large enough to force compaction";

    // The laggard must detect base() moved past its cursor, full-scan,
    // and still pick the exact placement the legacy path picks.
    auto [id1, est1] = w.make(w.factory.hadoopJob("after-storm", 55.0));
    expectSameAllocation(dirty.allocate(w.registry.get(id1), est1, 55.0,
                                        nullptr, false),
                         rescan.allocate(w.registry.get(id1), est1,
                                         55.0, nullptr, false),
                         "laggard decision");
}

TEST(ChangeJournal, SchedulerCreatedMidStreamMatchesFullRescan)
{
    JournalWorld w(sim::Cluster::localCluster());
    SchedulerConfig rescan_cfg;
    rescan_cfg.full_rescan = true;

    // Mutate the cluster before any dirty-set reader exists: place a
    // few workloads through a throwaway scheduler and degrade some
    // machines, so the journal already has history.
    {
        GreedyScheduler warm(w.cluster, rescan_cfg);
        for (int i = 0; i < 4; ++i) {
            auto [id, est] =
                w.make(w.factory.hadoopJob("pre", 20.0 + 10.0 * i));
            auto a = warm.allocate(w.registry.get(id), est,
                                   20.0 + 10.0 * i, nullptr, false);
            if (a)
                w.apply(id, *a);
        }
    }
    w.cluster.server(3).degrade(0.5);
    w.cluster.server(9).markDown();
    ASSERT_GT(w.cluster.journal().end(), 0u);

    // A dirty-set scheduler born mid-stream must prime itself (its
    // cursor starts before any retained entry) and then agree with
    // the legacy path decision-for-decision.
    GreedyScheduler dirty(w.cluster, SchedulerConfig{});
    GreedyScheduler rescan(w.cluster, rescan_cfg);
    for (int i = 0; i < 3; ++i) {
        auto [id, est] =
            w.make(w.factory.hadoopJob("mid", 30.0 + 15.0 * i));
        auto a = dirty.allocate(w.registry.get(id), est,
                                30.0 + 15.0 * i, nullptr, false);
        expectSameAllocation(a,
                             rescan.allocate(w.registry.get(id), est,
                                             30.0 + 15.0 * i, nullptr,
                                             false),
                             "mid-stream decision " + std::to_string(i));
        if (a)
            w.apply(id, *a);
    }
}

TEST(ChangeJournal, DirtySetTracksJournalAcrossDifferentCatalogs)
{
    // The platform catalog is fixed per Cluster, but the scheduler
    // caches platform indices inside its journal-fed entries — run
    // the same mutate/place loop against both testbed catalogs (10
    // vs. 14 platforms) to prove the cached indices stay coherent
    // with whichever catalog the journal's cluster actually has.
    for (int testbed = 0; testbed < 2; ++testbed) {
        JournalWorld w(testbed == 0 ? sim::Cluster::localCluster()
                                    : sim::Cluster::ec2Cluster(),
                       23 + uint64_t(testbed));
        SchedulerConfig rescan_cfg;
        rescan_cfg.full_rescan = true;
        GreedyScheduler dirty(w.cluster, SchedulerConfig{});
        GreedyScheduler rescan(w.cluster, rescan_cfg);

        for (int i = 0; i < 5; ++i) {
            // Interleave journal-visible churn with decisions.
            w.cluster.server(ServerId(size_t(i) * 3 %
                                      w.cluster.size()))
                .degrade(0.6);
            auto [id, est] =
                w.make(w.factory.hadoopJob("cat", 25.0 + 12.0 * i));
            auto a = dirty.allocate(w.registry.get(id), est,
                                    25.0 + 12.0 * i, nullptr, false);
            expectSameAllocation(
                a,
                rescan.allocate(w.registry.get(id), est,
                                25.0 + 12.0 * i, nullptr, false),
                "testbed " + std::to_string(testbed) + " decision " +
                    std::to_string(i));
            if (a)
                w.apply(id, *a);
        }
    }
}

// ---------------------------------------------------------------------
// Multi-reader cursor contract (the shard decision path's K readers)
// ---------------------------------------------------------------------

TEST(ChangeJournal, ConcurrentReadersReplayTheSameWindow)
{
    // Contract clause 1: reads are const and lock-free, so any number
    // of reader threads may replay concurrently — exactly what the
    // per-shard refresh phase does. Under TSan this test is the proof
    // there is no hidden mutable state on the read path.
    sim::ChangeJournal j(256);
    for (int i = 0; i < 200; ++i)
        j.note(ServerId(i % 40));

    const uint64_t snapshot_base = j.base();
    const uint64_t snapshot_end = j.end();
    std::vector<std::thread> readers;
    std::vector<uint64_t> sums(4, 0);
    for (size_t r = 0; r < sums.size(); ++r)
        readers.emplace_back([&, r] {
            uint64_t sum = 0;
            for (uint64_t pos = snapshot_base; pos < snapshot_end;
                 ++pos)
                sum += uint64_t(j.at(pos));
            sums[r] = sum;
        });
    for (std::thread &t : readers)
        t.join();
    for (size_t r = 1; r < sums.size(); ++r)
        EXPECT_EQ(sums[r], sums[0]) << "reader " << r;
}

TEST(ChangeJournal, LaggardCursorAmongMultipleReadersFallsBackAlone)
{
    // Contract clause 4, the regression the shard path depends on:
    // with K independent cursors, ONE reader falling behind a
    // compaction must full-scan and resync, while a reader that kept
    // up replays incrementally — and both then agree with the legacy
    // full-rescan referee decision-for-decision.
    JournalWorld w(sim::Cluster::localCluster(), 29);
    SchedulerConfig rescan_cfg;
    rescan_cfg.full_rescan = true;
    GreedyScheduler laggard(w.cluster, SchedulerConfig{});
    GreedyScheduler current(w.cluster, SchedulerConfig{});
    GreedyScheduler rescan(w.cluster, rescan_cfg);

    // Prime both dirty readers.
    auto [id0, est0] = w.make(w.factory.hadoopJob("prime", 35.0));
    auto p1 = laggard.allocate(w.registry.get(id0), est0, 35.0, nullptr,
                               false);
    expectSameAllocation(p1,
                         current.allocate(w.registry.get(id0), est0,
                                          35.0, nullptr, false),
                         "prime laggard vs current");
    expectSameAllocation(p1,
                         rescan.allocate(w.registry.get(id0), est0,
                                         35.0, nullptr, false),
                         "prime vs rescan");
    ASSERT_TRUE(p1.has_value());
    w.apply(id0, *p1);

    // Storm in bursts; only `current` refreshes between bursts, so
    // its cursor rides the compactions while the laggard's falls off
    // the retained window.
    interference::IVector poke = interference::zeroVector();
    poke[0] = 0.05;
    auto [probe_id, probe] = w.make(w.factory.hadoopJob("probe", 20.0));
    (void)probe_id;
    for (int burst = 0; burst < 40; ++burst) {
        for (size_t s = 0; s < w.cluster.size(); ++s) {
            w.cluster.server(ServerId(s)).injectPressure(poke);
            w.cluster.server(ServerId(s)).clearInjectedPressure();
        }
        // Read-only probe: keeps current's cursor at end() without
        // mutating the cluster.
        current.rankedCandidates(probe);
    }

    auto [id1, est1] = w.make(w.factory.hadoopJob("decide", 45.0));
    auto want = rescan.allocate(w.registry.get(id1), est1, 45.0,
                                nullptr, false);
    expectSameAllocation(laggard.allocate(w.registry.get(id1), est1,
                                          45.0, nullptr, false),
                         want, "laggard after compaction");
    expectSameAllocation(current.allocate(w.registry.get(id1), est1,
                                          45.0, nullptr, false),
                         want, "current reader after compaction");
}
