/**
 * @file
 * Example: a latency-critical service through a day.
 *
 * A memcached-style service with a 200 us p99 constraint rides a
 * diurnal load curve. The example prints, hour by hour, how Quasar
 * grows and shrinks the allocation to track the load, and how much
 * spare capacity flows to best-effort tasks at night.
 *
 * Build & run:  ./build/examples/latency_service
 */

#include <cmath>
#include <cstdio>

#include "core/manager.hh"
#include "driver/scenario.hh"
#include "workload/factory.hh"

using namespace quasar;
using workload::Workload;

int
main()
{
    constexpr double kDay = 86400.0;

    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarManager quasar_mgr(cluster, registry, {});
    workload::WorkloadFactory seeder{stats::Rng(17)};
    quasar_mgr.seedOffline(seeder, 24);

    driver::ScenarioDriver driver(cluster, registry, quasar_mgr,
                                  driver::DriverConfig{.tick_s = 20.0,
                                                       .record_every = 6});
    workload::WorkloadFactory factory{stats::Rng(99)};

    Workload mc = factory.memcachedService(
        "frontend-cache", 1.2e6, 200e-6, 512.0,
        std::make_shared<tracegen::DiurnalLoad>(0.25e6, 1.2e6, kDay,
                                                14.0 * 3600.0));
    WorkloadId svc = registry.add(mc);
    driver.addArrival(svc, 1.0);

    // Background best-effort work all day.
    for (double t = 30.0; t < kDay * 0.95; t += 20.0) {
        Workload be = factory.bestEffortJob("be");
        be.total_work *= 4.0;
        driver.addArrival(registry.add(be), t);
    }

    // Sample the allocation each hour.
    struct HourRow
    {
        double offered = 0.0, capacity = 0.0;
        int nodes = 0, cores = 0, be_cores = 0;
    };
    std::vector<HourRow> rows(25);
    workload::PerfOracle oracle(cluster, registry);
    driver.setTickHook([&](double t) {
        if (std::fmod(t, 3600.0) > 20.5)
            return;
        size_t h = size_t(std::lround(t / 3600.0));
        if (h >= rows.size())
            return;
        HourRow &row = rows[h];
        const Workload &w = registry.get(svc);
        row.offered = w.offeredQps(t);
        auto hosting = cluster.serversHosting(svc);
        row.nodes = int(hosting.size());
        row.capacity =
            hosting.empty() ? 0.0 : oracle.serviceCapacityQps(w, t);
        for (ServerId s : hosting)
            row.cores += cluster.server(s).share(svc)->cores;
        for (size_t s = 0; s < cluster.size(); ++s)
            for (const sim::TaskShare &task :
                 cluster.server(ServerId(s)).tasks())
                if (task.best_effort)
                    row.be_cores += task.cores;
    });

    driver.run(kDay);

    std::printf("=== memcached service through a day (Quasar) ===\n\n");
    std::printf("%5s %11s %11s %7s %7s %9s\n", "hour", "load(kQPS)",
                "cap(kQPS)", "nodes", "cores", "BE cores");
    for (size_t h = 1; h < rows.size(); ++h) {
        const HourRow &r = rows[h];
        if (r.offered <= 0.0)
            continue;
        std::printf("%5zu %11.0f %11.0f %7d %7d %9d\n", h,
                    r.offered / 1e3, r.capacity / 1e3, r.nodes,
                    r.cores, r.be_cores);
    }

    const driver::ServiceTrace *trace = driver.serviceTrace(svc);
    double qos_w = 0.0, off_sum = 0.0;
    for (size_t i = 0; i < trace->offered_qps.size(); ++i) {
        qos_w += trace->qos_fraction.valueAt(i) *
                 trace->offered_qps.valueAt(i);
        off_sum += trace->offered_qps.valueAt(i);
    }
    std::printf("\nqueries meeting the 200us QoS: %.1f%%\n",
                off_sum > 0 ? 100.0 * qos_w / off_sum : 0.0);
    std::printf("adjustments: %zu scale-ups, %zu scale-outs, %zu "
                "shrinks\n",
                quasar_mgr.stats().scale_up_adjustments,
                quasar_mgr.stats().scale_out_adjustments,
                quasar_mgr.stats().shrinks);
    return 0;
}
