/**
 * @file
 * Quickstart: bring up a 40-server heterogeneous cluster under Quasar,
 * submit a Hadoop-style analytics job, a memcached-style service, and
 * a handful of single-node batch jobs — each with a performance target
 * instead of a reservation — and watch Quasar profile, classify,
 * allocate, and adapt.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/manager.hh"
#include "driver/scenario.hh"
#include "workload/factory.hh"

using namespace quasar;

int
main()
{
    // 1. The cluster: 40 servers over the ten Table-1 platforms A-J.
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;

    // 2. The manager: default Quasar configuration.
    core::QuasarManager quasar_mgr(cluster, registry,
                                   core::QuasarConfig{});

    // 3. Anchor the classifier with offline-profiled seed workloads
    //    (the paper profiles 20-30 representative apps exhaustively).
    workload::WorkloadFactory factory{stats::Rng(2024)};
    quasar_mgr.seedOffline(factory, 24);

    // 4. Workloads express performance targets, not reservations.
    driver::ScenarioDriver driver(cluster, registry, quasar_mgr,
                                  driver::DriverConfig{.tick_s = 10.0});

    workload::Workload hadoop = factory.hadoopJob("mahout-recsys", 80.0);
    hadoop.target = workload::WorkloadFactory::defaultAnalyticsTarget(
        hadoop, cluster.catalog()[sim::highestEndPlatform(
                    cluster.catalog())]);
    WorkloadId hadoop_id = registry.add(hadoop);
    driver.addArrival(hadoop_id, 5.0);

    auto load = std::make_shared<tracegen::DiurnalLoad>(
        60e3, 220e3, 3600.0, 1800.0); // compressed "day" of 1 hour
    workload::Workload mc = factory.memcachedService(
        "memcached-frontend", 220e3, 200e-6, 64.0, load);
    WorkloadId mc_id = registry.add(mc);
    driver.addArrival(mc_id, 10.0);

    std::vector<WorkloadId> batch;
    for (int i = 0; i < 6; ++i) {
        workload::Workload w = factory.singleNodeJob(
            "spec-" + std::to_string(i), i % 2 ? "spec-int" : "parsec");
        WorkloadId id = registry.add(w);
        batch.push_back(id);
        driver.addArrival(id, 20.0 + 5.0 * i);
    }

    // 5. Run one simulated hour.
    driver.run(3600.0);

    // 6. Report.
    std::printf("=== quickstart: Quasar on a 40-server cluster ===\n\n");
    const workload::Workload &h = registry.get(hadoop_id);
    std::printf("analytics job '%s' (%.0f GB dataset)\n",
                h.name.c_str(), h.dataset_gb);
    std::printf("  target completion: %.0f s\n",
                h.target.completion_time_s);
    if (h.completed)
        std::printf("  finished in:       %.0f s\n",
                    h.completion_time - h.arrival_time);
    else
        std::printf("  progress:          %.0f%%\n",
                    100.0 * h.work_done / h.total_work);

    const driver::ServiceTrace *trace = driver.serviceTrace(mc_id);
    if (trace && !trace->qos_fraction.empty()) {
        std::printf("\nmemcached service '%s'\n",
                    registry.get(mc_id).name.c_str());
        std::printf("  mean offered load:   %.0f QPS\n",
                    trace->offered_qps.mean());
        std::printf("  mean served in QoS:  %.0f QPS\n",
                    trace->served_ok_qps.mean());
        std::printf("  mean QoS fraction:   %.1f%%\n",
                    100.0 * trace->qos_fraction.mean());
    }

    int done = 0;
    for (WorkloadId id : batch)
        if (registry.get(id).completed)
            ++done;
    std::printf("\nsingle-node jobs completed: %d/%zu\n", done,
                batch.size());

    std::printf("\ncluster mean CPU utilization: %.1f%%\n",
                100.0 * driver.cpuUsedGrid().overallMean());
    const core::QuasarStats &stats = quasar_mgr.stats();
    std::printf("manager: %zu scheduled, %zu adjusted up, %zu out, "
                "%zu shrinks, %zu rescheduled\n",
                stats.scheduled, stats.scale_up_adjustments,
                stats.scale_out_adjustments, stats.shrinks,
                stats.rescheduled);
    return 0;
}
