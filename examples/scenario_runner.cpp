/**
 * @file
 * Configurable scenario runner: a small CLI over the library so new
 * scenarios can be explored without writing code.
 *
 *   scenario_runner [options]
 *     --manager quasar|ll|paragon|autoscale|framework   (default quasar)
 *     --cluster local|ec2                               (default local)
 *     --workloads N        number of submissions        (default 200)
 *     --arrival-s S        inter-arrival seconds        (default 2)
 *     --horizon-s S        simulated duration           (default 7200)
 *     --seed N             RNG seed                     (default 1)
 *     --heatmap            print the CPU utilization heatmap
 *
 * Prints per-type performance against targets, utilization, and
 * manager activity.
 */

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/autoscale.hh"
#include "baselines/framework_scheduler.hh"
#include "baselines/paragon.hh"
#include "baselines/reservation_ll.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using workload::Workload;

namespace
{

struct Options
{
    std::string manager = "quasar";
    std::string cluster = "local";
    int workloads = 200;
    double arrival_s = 2.0;
    double horizon_s = 7200.0;
    uint64_t seed = 1;
    bool heatmap = false;
};

bool
parse(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", what);
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--manager") {
            const char *v = next("--manager");
            if (!v)
                return false;
            opt.manager = v;
        } else if (a == "--cluster") {
            const char *v = next("--cluster");
            if (!v)
                return false;
            opt.cluster = v;
        } else if (a == "--workloads") {
            const char *v = next("--workloads");
            if (!v)
                return false;
            opt.workloads = std::atoi(v);
        } else if (a == "--arrival-s") {
            const char *v = next("--arrival-s");
            if (!v)
                return false;
            opt.arrival_s = std::atof(v);
        } else if (a == "--horizon-s") {
            const char *v = next("--horizon-s");
            if (!v)
                return false;
            opt.horizon_s = std::atof(v);
        } else if (a == "--seed") {
            const char *v = next("--seed");
            if (!v)
                return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--heatmap") {
            opt.heatmap = true;
        } else if (a == "--help" || a == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

std::unique_ptr<driver::ClusterManager>
makeManager(const Options &opt, sim::Cluster &cluster,
            workload::WorkloadRegistry &registry)
{
    if (opt.manager == "quasar") {
        core::QuasarConfig cfg;
        cfg.seed = opt.seed ^ 0xBEEF;
        auto m = std::make_unique<core::QuasarManager>(cluster, registry,
                                                       cfg);
        workload::WorkloadFactory seeder{stats::Rng(opt.seed ^ 0xFEED)};
        m->seedOffline(seeder, 24);
        return m;
    }
    if (opt.manager == "ll")
        return std::make_unique<baselines::ReservationLLManager>(
            cluster, registry, opt.seed);
    if (opt.manager == "paragon") {
        auto m = std::make_unique<baselines::ParagonManager>(
            cluster, registry, opt.seed);
        workload::WorkloadFactory seeder{stats::Rng(opt.seed ^ 0xFEED)};
        m->seedOffline(bench::standardSeeds(seeder, 4), 0.0);
        return m;
    }
    if (opt.manager == "autoscale")
        return std::make_unique<baselines::AutoScaleManager>(
            cluster, registry, baselines::AutoScaleConfig{}, opt.seed);
    if (opt.manager == "framework")
        return std::make_unique<baselines::FrameworkSelfManager>(
            cluster, registry, opt.seed);
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt)) {
        std::fprintf(stderr,
                     "usage: scenario_runner [--manager quasar|ll|"
                     "paragon|autoscale|framework] [--cluster "
                     "local|ec2] [--workloads N] [--arrival-s S] "
                     "[--horizon-s S] [--seed N] [--heatmap]\n");
        return 2;
    }

    sim::Cluster cluster = opt.cluster == "ec2"
                               ? sim::Cluster::ec2Cluster()
                               : sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    auto manager = makeManager(opt, cluster, registry);
    if (!manager) {
        std::fprintf(stderr, "unknown manager '%s'\n",
                     opt.manager.c_str());
        return 2;
    }

    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 10.0,
                                                    .record_every = 3});
    workload::WorkloadFactory factory{stats::Rng(opt.seed)};
    std::vector<WorkloadId> ids;
    for (int i = 0; i < opt.workloads; ++i) {
        Workload w =
            factory.randomWorkload("w" + std::to_string(i));
        if (w.type == workload::WorkloadType::Analytics)
            w.target = workload::PerformanceTarget::completionTime(
                1.5 * bench::sweepBestCompletion(w, cluster.catalog(),
                                                 4, 4),
                w.total_work);
        WorkloadId id = registry.add(w);
        ids.push_back(id);
        drv.addArrival(id, opt.arrival_s * double(i + 1));
    }
    drv.run(opt.horizon_s);

    std::array<stats::Samples, 4> norm_by_type;
    std::array<int, 4> count_by_type{};
    int finished = 0;
    for (WorkloadId id : ids) {
        const Workload &w = registry.get(id);
        ++count_by_type[size_t(w.type)];
        double norm;
        if (w.type == workload::WorkloadType::Analytics) {
            double start = w.first_placed_at >= 0.0 ? w.first_placed_at
                                                    : w.arrival_time;
            norm = w.completed ? w.target.completion_time_s /
                                     (w.completion_time - start)
                               : w.work_done / w.total_work;
        } else {
            norm = drv.meanNormalizedPerf(id);
        }
        norm_by_type[size_t(w.type)].add(std::min(norm, 1.25));
        if (w.completed)
            ++finished;
    }

    std::printf("=== %s on the %s cluster: %d workloads over %.0fs "
                "===\n\n",
                manager->name().c_str(), opt.cluster.c_str(),
                opt.workloads, opt.horizon_s);
    static const char *type_names[4] = {"analytics", "latency",
                                        "stateful", "single-node"};
    std::printf("%-12s %8s %12s\n", "type", "count", "perf vs tgt");
    for (size_t t = 0; t < 4; ++t) {
        if (count_by_type[t] == 0)
            continue;
        std::printf("%-12s %8d %11.0f%%\n", type_names[t],
                    count_by_type[t],
                    100.0 * norm_by_type[t].mean());
    }
    std::printf("\nfinished: %d / %d (services run indefinitely)\n",
                finished, opt.workloads);
    auto means =
        drv.cpuUsedGrid().windowMeans(opt.horizon_s * 0.1,
                                      opt.horizon_s * 0.9);
    double util = 0.0;
    for (double m : means)
        util += m;
    std::printf("mean CPU utilization: %.1f%%\n",
                100.0 * util / double(means.size()));

    if (opt.heatmap)
        std::printf("\n%s",
                    drv.cpuUsedGrid()
                        .renderHeatmap(0.0, opt.horizon_s, 72)
                        .c_str());
    return 0;
}
