/**
 * @file
 * Example: a mixed datacenter under three managers.
 *
 * The same 300-workload mix (batch analytics, latency-critical
 * services, single-node jobs) runs on the 200-server EC2-style cluster
 * under Quasar, reservation+least-loaded, and auto-scaling. The
 * example prints the utilization and target-attainment gap between
 * them — the core trade-off the paper quantifies.
 *
 * Build & run:  ./build/examples/datacenter_day
 */

#include <cstdio>
#include <memory>

#include "baselines/autoscale.hh"
#include "baselines/reservation_ll.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"
#include "workload/factory.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kHorizon = 10800.0; // three hours
constexpr int kCount = 300;

struct Outcome
{
    double mean_norm_perf = 0.0;
    double mean_util = 0.0;
    int finished = 0;
};

std::vector<Workload>
buildMix(const std::vector<sim::Platform> &catalog)
{
    workload::WorkloadFactory factory{stats::Rng(123)};
    auto &rng = factory.rng();
    std::vector<Workload> mix;
    for (int i = 0; i < kCount; ++i) {
        double x = rng.uniform();
        std::string name = "w" + std::to_string(i);
        if (x < 0.65) {
            mix.push_back(factory.singleNodeJob(name, "mix"));
        } else if (x < 0.9) {
            Workload j =
                factory.hadoopJob(name, rng.uniform(2.0, 15.0));
            double best_rate = 0.0;
            for (const sim::Platform &p : catalog)
                for (const auto &cfg :
                     workload::scaleUpGrid(p, j.type))
                    best_rate = std::max(
                        best_rate, j.truth.nodeRateQuiet(p, cfg));
            j.target = workload::PerformanceTarget::completionTime(
                j.total_work / best_rate, j.total_work);
            mix.push_back(j);
        } else {
            double qps = rng.uniform(50.0, 200.0);
            mix.push_back(factory.webService(
                name, qps, 0.1,
                std::make_shared<tracegen::FluctuatingLoad>(
                    0.75 * qps, 0.25 * qps, 5400.0)));
        }
    }
    return mix;
}

template <typename MakeManager>
Outcome
run(MakeManager make)
{
    sim::Cluster cluster = sim::Cluster::ec2Cluster();
    workload::WorkloadRegistry registry;
    auto manager = make(cluster, registry);
    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 15.0,
                                                    .record_every = 4});
    auto mix = buildMix(cluster.catalog());
    std::vector<WorkloadId> ids;
    for (size_t i = 0; i < mix.size(); ++i) {
        WorkloadId id = registry.add(mix[i]);
        ids.push_back(id);
        drv.addArrival(id, 2.0 * double(i + 1));
    }
    drv.run(kHorizon);

    Outcome out;
    double norm_sum = 0.0;
    for (WorkloadId id : ids) {
        const Workload &w = registry.get(id);
        double norm = drv.meanNormalizedPerf(id);
        if (w.type == workload::WorkloadType::Analytics && w.completed)
            norm = w.target.completion_time_s /
                   (w.completion_time - w.arrival_time);
        norm_sum += std::min(norm, 1.25);
        if (w.completed)
            ++out.finished;
    }
    out.mean_norm_perf = norm_sum / double(ids.size());
    auto means = drv.cpuUsedGrid().windowMeans(600.0, kHorizon * 0.8);
    for (double m : means)
        out.mean_util += m;
    out.mean_util /= double(means.size());
    return out;
}

} // namespace

int
main()
{
    std::printf("=== one datacenter mix, three managers ===\n");
    std::printf("(300 workloads on 200 EC2-style servers)\n\n");

    Outcome quasar = run([](auto &c, auto &r) {
        core::QuasarConfig cfg;
        cfg.seed = 5;
        auto m = std::make_unique<core::QuasarManager>(c, r, cfg);
        workload::WorkloadFactory seeder{stats::Rng(6)};
        m->seedOffline(seeder, 24);
        return m;
    });
    Outcome ll = run([](auto &c, auto &r) {
        return std::make_unique<baselines::ReservationLLManager>(c, r,
                                                                 8);
    });
    Outcome as = run([](auto &c, auto &r) {
        return std::make_unique<baselines::AutoScaleManager>(
            c, r, baselines::AutoScaleConfig{}, 9);
    });

    std::printf("%-24s %12s %12s %10s\n", "manager", "perf vs tgt",
                "CPU util", "finished");
    auto row = [](const char *name, const Outcome &o) {
        std::printf("%-24s %11.0f%% %11.1f%% %10d\n", name,
                    100.0 * o.mean_norm_perf, 100.0 * o.mean_util,
                    o.finished);
    };
    row("quasar", quasar);
    row("reservation+LL", ll);
    row("auto-scale", as);

    std::printf("\nQuasar's thesis in one table: with performance "
                "targets instead of reservations, the same hardware "
                "delivers more of the asked-for performance at higher "
                "utilization.\n");
    return 0;
}
