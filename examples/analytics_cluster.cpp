/**
 * @file
 * Example: a shared analytics cluster.
 *
 * Eight Hadoop/Spark/Storm jobs with completion-time targets share the
 * 40-server cluster with a stream of best-effort tasks. The example
 * shows how Quasar right-sizes each job (node count, per-node
 * resources, and framework knobs), packs best-effort work into the
 * gaps, and what utilization the cluster reaches.
 *
 * Build & run:  ./build/examples/analytics_cluster
 */

#include <cstdio>

#include "core/manager.hh"
#include "driver/scenario.hh"
#include "workload/factory.hh"

using namespace quasar;
using workload::Workload;

int
main()
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarManager quasar_mgr(cluster, registry, {});
    workload::WorkloadFactory seeder{stats::Rng(7)};
    quasar_mgr.seedOffline(seeder, 24);

    driver::ScenarioDriver driver(cluster, registry, quasar_mgr,
                                  driver::DriverConfig{.tick_s = 10.0});
    workload::WorkloadFactory factory{stats::Rng(42)};

    // Eight analytics jobs, one arriving every 30 s.
    struct JobInfo
    {
        WorkloadId id;
        std::string kind;
    };
    std::vector<JobInfo> jobs;
    for (int i = 0; i < 8; ++i) {
        Workload j;
        const char *kind;
        double gb = factory.rng().uniform(20.0, 80.0);
        switch (i % 3) {
          case 0:
            j = factory.hadoopJob("hadoop-" + std::to_string(i), gb);
            kind = "hadoop";
            break;
          case 1:
            j = factory.sparkJob("spark-" + std::to_string(i), gb);
            kind = "spark";
            break;
          default:
            j = factory.stormJob("storm-" + std::to_string(i), gb);
            kind = "storm";
            break;
        }
        j.total_work *= 8.0;
        j.target = workload::WorkloadFactory::defaultAnalyticsTarget(
            j, cluster.catalog()[sim::highestEndPlatform(
                   cluster.catalog())]);
        WorkloadId id = registry.add(j);
        jobs.push_back({id, kind});
        driver.addArrival(id, 30.0 * (i + 1));
    }

    // Best-effort filler, one task every 8 s for the first hour.
    int be_count = 0;
    for (double t = 8.0; t < 3600.0; t += 8.0) {
        Workload be = factory.bestEffortJob("be");
        be.total_work *= 2.0;
        WorkloadId id = registry.add(be);
        driver.addArrival(id, t);
        ++be_count;
    }

    driver.run(14400.0); // four hours

    std::printf("=== analytics cluster under Quasar ===\n\n");
    std::printf("%-10s %-10s %10s %10s %8s\n", "job", "framework",
                "target(s)", "actual(s)", "gap");
    for (const JobInfo &info : jobs) {
        const Workload &w = registry.get(info.id);
        if (!w.completed) {
            std::printf("%-10s %-10s %10.0f %10s\n", w.name.c_str(),
                        info.kind.c_str(), w.target.completion_time_s,
                        "(running)");
            continue;
        }
        double actual = w.completion_time - w.arrival_time;
        std::printf("%-10s %-10s %10.0f %10.0f %7.1f%%\n",
                    w.name.c_str(), info.kind.c_str(),
                    w.target.completion_time_s, actual,
                    100.0 * (actual - w.target.completion_time_s) /
                        w.target.completion_time_s);
    }

    int be_done = 0;
    for (WorkloadId id : registry.all()) {
        const Workload &w = registry.get(id);
        if (w.best_effort && w.completed)
            ++be_done;
    }
    std::printf("\nbest-effort: %d of %d finished\n", be_done,
                be_count);
    std::printf("mean cluster CPU utilization (first 2h): %.1f%%\n",
                100.0 * [&] {
                    auto m = driver.cpuUsedGrid().windowMeans(0.0,
                                                              7200.0);
                    double s = 0.0;
                    for (double v : m)
                        s += v;
                    return s / double(m.size());
                }());
    const core::QuasarStats &st = quasar_mgr.stats();
    std::printf("manager activity: %zu placements, %zu scale-ups, %zu "
                "scale-outs, %zu evictions, %zu reschedules\n",
                st.scheduled, st.scale_up_adjustments,
                st.scale_out_adjustments, st.evictions,
                st.rescheduled);
    return 0;
}
