/**
 * @file
 * Trace-replay bench: the two checked-in cluster-trace fixtures
 * (Google task-events style, Azure vmtable style) ingested, mapped,
 * and replayed through the full Quasar manager, comparing the
 * scheduler's two production decision paths under the identical
 * mapped stream (full_rescan is tests-only: the QUASAR_VERIFY shadow
 * oracle and the equivalence tests cover it).
 *
 * Gates (exit non-zero on violation):
 *   1. Parser diagnostics: each fixture carries a known number of
 *      deliberately malformed rows; the parsers must reject exactly
 *      those, with per-line diagnostics, and nothing else.
 *   2. Mode divergence: dirty / cached must produce bit-identical
 *      placements (FNV-1a fold of the full allocation state every
 *      tick).
 *   3. Re-replay stability: replaying the same mapped trace twice in
 *      the same mode must produce the identical placement hash.
 *
 * Reports decisions/s, admission depth, QoS-violation rate, the
 * placement hash, and the wall-clock breakdown per (fixture, mode),
 * to BENCH_trace_replay.json. The full run adds a synthesizer leg:
 * a ChurnConfig fitted to the mapped Google fixture driving a
 * 2000-server stream — the "small fixture, big cluster" path.
 *
 * `--smoke` is the CI variant: both fixtures at 200 servers over a
 * short horizon, both modes plus the re-replay gate.
 *
 * To replay a real downloaded trace instead of the fixtures, point
 * `--traces=<dir>` at a directory whose files carry the fixture
 * names (google_task_events.csv / azure_vmtable.csv, optionally with
 * a .gz suffix when built with zlib) and pass `--no-diag-gate` —
 * gate 1's exact counts are a property of the bundled fixtures, not
 * of real data. Gates 2 and 3 (mode equivalence, re-replay
 * stability) still apply.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "churn/churn.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"
#include "trace/azure.hh"
#include "trace/google.hh"
#include "trace/mapper.hh"
#include "trace/replay.hh"
#include "trace/synth.hh"

using namespace quasar;

namespace
{

/** The paper's testbeds, scaled up by replicating the EC2 mix. */
sim::Cluster
clusterOfSize(int servers)
{
    if (servers == 40)
        return sim::Cluster::localCluster();
    if (servers == 200)
        return sim::Cluster::ec2Cluster();
    auto catalog = sim::ec2Platforms();
    std::vector<int> counts = {6, 6, 8, 14, 6, 8, 16, 30,
                               8, 30, 8, 16, 30, 14};
    for (int &c : counts)
        c *= servers / 200;
    return sim::Cluster(catalog, counts);
}

const char *
modeName(bool dirty, bool full)
{
    return full ? "full_rescan" : dirty ? "dirty" : "cached";
}

struct ModeMetrics
{
    double decisions_per_s = 0.0;
    uint64_t schedule_calls = 0;
    double mean_admission_depth = 0.0;
    size_t max_admission_depth = 0;
    double qos_violation_rate = 0.0;
    uint64_t placement_hash = 0;
    size_t arrivals = 0;
    /** Split QoS-outcome accounting (driver::outcomeOf): departed =
     *  churn departures/cancellations, shed = overload-control drops,
     *  degraded = completed-or-departed after a brownout episode. */
    size_t completed = 0;
    size_t departed = 0;
    size_t shed = 0;
    size_t degraded = 0;
    /** Wall-clock means, milliseconds. */
    double classify_ms = 0.0;
    double profile_ms = 0.0;
    double schedule_ms = 0.0;
    double adapt_ms = 0.0;
    double rank_ms = 0.0;
    double place_ms = 0.0;
    double tick_ms = 0.0;
};

/** Fold the cluster's full allocation state into a running FNV-1a. */
void
hashClusterState(const sim::Cluster &cluster, uint64_t &h)
{
    auto fold = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ULL;
    };
    for (size_t s = 0; s < cluster.size(); ++s) {
        const sim::Server &srv = cluster.server(ServerId(s));
        fold(uint64_t(s) << 32 | uint64_t(srv.available()));
        for (const sim::TaskShare &t : srv.tasks()) {
            // Socket folded into the high bits of the workload
            // word: ids stay far below 2^48, and socket 0 leaves the
            // pre-topology hash untouched (flat bit-identity).
            fold(uint64_t(t.workload) | uint64_t(t.socket) << 48);
            fold(uint64_t(t.cores));
        }
    }
}

/** One replay (or synth) run in one scheduler mode. */
ModeMetrics
runStream(int servers, double horizon_s, bool dirty, bool full,
          const trace::MappedTrace *mapped,
          const churn::ChurnConfig *synth_cfg)
{
    sim::Cluster cluster = clusterOfSize(servers);
    workload::WorkloadRegistry registry;

    core::QuasarConfig qcfg;
    qcfg.scheduler.dirty_set = dirty;
    qcfg.scheduler.full_rescan = full;
    qcfg.proactive_interval_s = horizon_s / 3.0;
    core::QuasarManager mgr(cluster, registry, qcfg);
    workload::WorkloadFactory seeder{stats::Rng(4242)};
    mgr.seedOffline(seeder, 16);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 15.0, .record_every = 2});

    // Exactly one stream source: a mapped trace or a fitted config.
    trace::TraceReplayer replayer(mapped ? *mapped
                                         : trace::MappedTrace{});
    churn::ChurnEngine synth(synth_cfg ? *synth_cfg
                                       : churn::ChurnConfig{});
    const std::vector<churn::ChurnItem> *plan = nullptr;
    if (mapped) {
        replayer.install(cluster, registry, drv);
        plan = &replayer.plan();
    } else {
        synth.install(cluster, registry, drv);
        plan = &synth.plan();
    }

    ModeMetrics m;
    double depth_sum = 0.0;
    size_t depth_n = 0;
    uint64_t hash = 0xCBF29CE484222325ULL;
    drv.setTickHook([&](double) {
        size_t d = mgr.admission().size();
        depth_sum += double(d);
        ++depth_n;
        m.max_admission_depth = std::max(m.max_admission_depth, d);
        hashClusterState(cluster, hash);
    });

    drv.run(horizon_s);

    const core::QuasarStats &st = mgr.stats();
    m.schedule_calls = st.schedule_time.count;
    m.decisions_per_s = st.schedule_time.total_s > 0.0
                            ? double(st.schedule_time.count) /
                                  st.schedule_time.total_s
                            : 0.0;
    m.mean_admission_depth =
        depth_n ? depth_sum / double(depth_n) : 0.0;
    m.placement_hash = hash;
    m.arrivals = plan->size();

    double qos_sum = 0.0;
    size_t qos_n = 0;
    for (const churn::ChurnItem &item : *plan) {
        if (item.cls != churn::ChurnClass::Service)
            continue;
        const driver::ServiceTrace *trace = drv.serviceTrace(item.id);
        if (!trace || trace->qos_fraction.size() == 0)
            continue;
        qos_sum += trace->qos_fraction.mean();
        ++qos_n;
    }
    m.qos_violation_rate = qos_n ? 1.0 - qos_sum / double(qos_n) : 0.0;

    for (const churn::ChurnItem &item : *plan) {
        const workload::Workload &w = registry.get(item.id);
        switch (driver::outcomeOf(w)) {
        case driver::WorkloadOutcome::Completed:
            ++m.completed;
            break;
        case driver::WorkloadOutcome::Departed:
            ++m.departed;
            break;
        case driver::WorkloadOutcome::Shed:
            ++m.shed;
            break;
        case driver::WorkloadOutcome::Active:
            break;
        }
        if (w.brownout_ever)
            ++m.degraded;
    }

    m.classify_ms = st.classify_time.meanSeconds() * 1e3;
    m.profile_ms = st.profile_time.meanSeconds() * 1e3;
    m.schedule_ms = st.schedule_time.meanSeconds() * 1e3;
    m.adapt_ms = st.adapt_time.meanSeconds() * 1e3;
    m.rank_ms = mgr.scheduler().timing().rank.meanSeconds() * 1e3;
    m.place_ms = mgr.scheduler().timing().place.meanSeconds() * 1e3;
    m.tick_ms = drv.tickTiming().meanSeconds() * 1e3;
    return m;
}

struct Fixture
{
    const char *name;
    const char *file;
    size_t expected_diagnostics;
    trace::TraceStream stream;
    trace::MappedTrace mapped;
};

bool
checkDiagnostics(const Fixture &fx)
{
    if (fx.stream.rows_rejected == fx.expected_diagnostics &&
        fx.stream.diagnostics.size() == fx.expected_diagnostics)
        return true;
    std::fprintf(stderr,
                 "FAIL: %s expected exactly %zu parser rejections, "
                 "got %zu (%zu diagnostics)\n",
                 fx.name, fx.expected_diagnostics,
                 fx.stream.rows_rejected, fx.stream.diagnostics.size());
    for (const trace::RowDiagnostic &d : fx.stream.diagnostics)
        std::fprintf(stderr, "  line %zu: %s\n", d.line,
                     d.reason.c_str());
    return false;
}

int
runTraceReplayBench(bool smoke, const std::string &out_path,
                    const std::string &traces_dir, bool diag_gate)
{
    const int servers = smoke ? 200 : 500;
    const double horizon = smoke ? 300.0 : 600.0;
    const uint64_t seed = 20260806;

    bench::banner(
        smoke ? "trace replay (smoke): google + azure fixtures"
              : "trace replay: google + azure fixtures, dirty vs "
                "cached + synth leg");

    Fixture fixtures[2] = {
        {"google", "google_task_events.csv", 9, {}, {}},
        {"azure", "azure_vmtable.csv", 7, {}, {}},
    };
    // A line-0 diagnostic means the file could not be opened; fall
    // back to the gzip variant so downloaded traces can stay
    // compressed (decoded by the reader when built with zlib).
    auto unopenable = [](const trace::TraceStream &s) {
        return s.events.empty() && s.diagnostics.size() == 1 &&
               s.diagnostics[0].line == 0;
    };
    fixtures[0].stream = trace::parseGoogleTaskEventsFile(
        traces_dir + "/" + fixtures[0].file);
    if (unopenable(fixtures[0].stream))
        fixtures[0].stream = trace::parseGoogleTaskEventsFile(
            traces_dir + "/" + fixtures[0].file + ".gz");
    fixtures[1].stream = trace::parseAzureVmFile(
        traces_dir + "/" + fixtures[1].file);
    if (unopenable(fixtures[1].stream))
        fixtures[1].stream = trace::parseAzureVmFile(
            traces_dir + "/" + fixtures[1].file + ".gz");

    trace::TraceMapperConfig mcfg;
    mcfg.target_horizon_s = horizon;
    mcfg.target_servers = servers;
    mcfg.seed = seed;
    for (Fixture &fx : fixtures) {
        // The exact-count gate is for the bundled fixtures; a real
        // downloaded trace (--traces=... --no-diag-gate) rejects
        // however many rows it rejects, reported but not gated.
        if (diag_gate && !checkDiagnostics(fx))
            return 1;
        fx.mapped = trace::mapTrace(fx.stream, mcfg);
        std::printf(
            "  %s: %zu rows -> %zu events (%zu ok, %zu ignored, "
            "%zu rejected), %zu mapped instances "
            "(x%.2f population, x%.3f time)\n",
            fx.name, fx.stream.rows_total, fx.stream.events.size(),
            fx.stream.rows_ok, fx.stream.rows_ignored,
            fx.stream.rows_rejected, fx.mapped.items.size(),
            fx.mapped.population_scale, fx.mapped.time_scale);
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"name\": \"trace_replay\",\n"
                 "  \"smoke\": %s,\n  \"servers\": %d,\n"
                 "  \"horizon_s\": %.0f,\n  \"fixtures\": [\n",
                 smoke ? "true" : "false", servers, horizon);
    for (size_t i = 0; i < 2; ++i) {
        const Fixture &fx = fixtures[i];
        std::fprintf(
            out,
            "    {\"name\": \"%s\", \"rows_total\": %zu, "
            "\"rows_ok\": %zu, \"rows_ignored\": %zu, "
            "\"rows_rejected\": %zu, \"events\": %zu, "
            "\"mapped_instances\": %zu, \"population_scale\": %.4f, "
            "\"time_scale\": %.6f}%s\n",
            fx.name, fx.stream.rows_total, fx.stream.rows_ok,
            fx.stream.rows_ignored, fx.stream.rows_rejected,
            fx.stream.events.size(), fx.mapped.items.size(),
            fx.mapped.population_scale, fx.mapped.time_scale,
            i == 0 ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"runs\": [\n");

    struct Run
    {
        const Fixture *fx;
        bool dirty;
        bool full;
        bool replay_check; ///< second dirty run: stability gate.
    };
    std::vector<Run> runs;
    for (const Fixture &fx : fixtures) {
        runs.push_back({&fx, true, false, false});
        runs.push_back({&fx, false, false, false});
        runs.push_back({&fx, true, false, true});
    }

    bool all_identical = true;
    bool all_stable = true;
    std::vector<std::pair<const Fixture *, uint64_t>> dirty_hashes;
    bool wrote_run = false;
    for (const Run &r : runs) {
        ModeMetrics m = runStream(servers, horizon, r.dirty, r.full,
                                  &r.fx->mapped, nullptr);
        bool identical = true;
        if (r.dirty && !r.replay_check) {
            dirty_hashes.emplace_back(r.fx, m.placement_hash);
        } else {
            for (const auto &[fx, h] : dirty_hashes)
                if (fx == r.fx)
                    identical = m.placement_hash == h;
            if (r.replay_check)
                all_stable = all_stable && identical;
            else
                all_identical = all_identical && identical;
        }
        const char *label =
            r.replay_check ? "re-replay" : modeName(r.dirty, r.full);
        std::printf(
            "  %-6s %-11s: %8.0f decisions/s  (%llu calls)  "
            "depth %.1f/%zu  qos-viol %.3f  done %zu, departed %zu, "
            "shed %zu, degraded %zu  %s\n",
            r.fx->name, label, m.decisions_per_s,
            (unsigned long long)m.schedule_calls,
            m.mean_admission_depth, m.max_admission_depth,
            m.qos_violation_rate, m.completed, m.departed, m.shed,
            m.degraded, identical ? "identical" : "DIVERGED");
        std::printf(
            "         breakdown ms: classify %.3f (profile %.3f)  "
            "schedule %.4f (rank %.4f place %.4f)  adapt %.4f  "
            "tick %.3f\n",
            m.classify_ms, m.profile_ms, m.schedule_ms, m.rank_ms,
            m.place_ms, m.adapt_ms, m.tick_ms);
        std::fprintf(
            out,
            "%s    {\"fixture\": \"%s\", \"mode\": \"%s\", "
            "\"arrivals\": %zu, \"decisions_per_s\": %.1f, "
            "\"schedule_calls\": %llu, "
            "\"mean_admission_depth\": %.2f, "
            "\"max_admission_depth\": %zu, "
            "\"qos_violation_rate\": %.4f, "
            "\"completed\": %zu, \"departed\": %zu, \"shed\": %zu, "
            "\"degraded\": %zu, "
            "\"placement_hash\": \"%016llx\", \"identical\": %s, "
            "\"classify_ms\": %.4f, \"profile_ms\": %.4f, "
            "\"schedule_ms\": %.5f, \"adapt_ms\": %.5f, "
            "\"rank_ms\": %.5f, \"place_ms\": %.5f, "
            "\"tick_ms\": %.4f}",
            wrote_run ? ",\n" : "", r.fx->name, label, m.arrivals,
            m.decisions_per_s, (unsigned long long)m.schedule_calls,
            m.mean_admission_depth, m.max_admission_depth,
            m.qos_violation_rate, m.completed, m.departed, m.shed,
            m.degraded,
            (unsigned long long)m.placement_hash,
            identical ? "true" : "false", m.classify_ms, m.profile_ms,
            m.schedule_ms, m.adapt_ms, m.rank_ms, m.place_ms,
            m.tick_ms);
        wrote_run = true;
    }

    // Synthesizer leg (full run only): fit the generator to the
    // mapped Google fixture and drive a 2000-server stream from it.
    // The fitted rate is kept as-is — the fixture runs above already
    // oversubscribe their cluster ~2x, so the same absolute load on
    // 4x the servers lands near saturation instead of deep overload
    // (which would make the run quadratic in admission depth).
    if (!smoke) {
        trace::SynthFit fit =
            trace::fitChurnConfig(fixtures[0].mapped, seed);
        std::printf("  synth fit (google): rate %.2f/s %s, mix "
                    "%.2f/%.2f/%.2f/%.2f, phase %.3f\n",
                    fit.config.arrival_rate_per_s,
                    fit.config.arrivals == churn::ArrivalKind::Pareto
                        ? "pareto"
                        : "poisson",
                    fit.config.mix.single_node,
                    fit.config.mix.analytics, fit.config.mix.service,
                    fit.config.mix.best_effort,
                    fit.config.phase_change_fraction);
        ModeMetrics m = runStream(2000, horizon, true, false, nullptr,
                                  &fit.config);
        std::printf(
            "  synth  2000 dirty  : %8.0f decisions/s  (%llu calls) "
            " depth %.1f/%zu  qos-viol %.3f  tick %.3f ms\n",
            m.decisions_per_s, (unsigned long long)m.schedule_calls,
            m.mean_admission_depth, m.max_admission_depth,
            m.qos_violation_rate, m.tick_ms);
        std::fprintf(
            out,
            ",\n    {\"fixture\": \"google\", \"mode\": "
            "\"synth_2000_dirty\", \"arrivals\": %zu, "
            "\"decisions_per_s\": %.1f, \"schedule_calls\": %llu, "
            "\"mean_admission_depth\": %.2f, "
            "\"max_admission_depth\": %zu, "
            "\"qos_violation_rate\": %.4f, "
            "\"completed\": %zu, \"departed\": %zu, \"shed\": %zu, "
            "\"degraded\": %zu, "
            "\"placement_hash\": \"%016llx\", \"identical\": true, "
            "\"classify_ms\": %.4f, \"profile_ms\": %.4f, "
            "\"schedule_ms\": %.5f, \"adapt_ms\": %.5f, "
            "\"rank_ms\": %.5f, \"place_ms\": %.5f, "
            "\"tick_ms\": %.4f}",
            m.arrivals, m.decisions_per_s,
            (unsigned long long)m.schedule_calls,
            m.mean_admission_depth, m.max_admission_depth,
            m.qos_violation_rate, m.completed, m.departed, m.shed,
            m.degraded,
            (unsigned long long)m.placement_hash, m.classify_ms,
            m.profile_ms, m.schedule_ms, m.adapt_ms, m.rank_ms,
            m.place_ms, m.tick_ms);
    }

    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: scheduler modes diverged on "
                             "placements under trace replay\n");
        return 1;
    }
    if (!all_stable) {
        std::fprintf(stderr, "FAIL: re-replaying the same mapped "
                             "trace changed placements\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool diag_gate = true;
    std::string out_path = "BENCH_trace_replay.json";
    std::string traces_dir = "tests/traces";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--no-diag-gate")
            diag_gate = false;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--traces=", 0) == 0)
            traces_dir = arg.substr(9);
    }
    return runTraceReplayBench(smoke, out_path, traces_dir, diag_gate);
}
