/**
 * @file
 * Google-benchmark microbenchmarks for the decision-path latencies the
 * paper reports (Secs. 3.2-3.4, 6.5): SVD and PQ-reconstruction on
 * classification-sized matrices, fold-in of a new workload row, the
 * four parallel classifications vs the exhaustive one, greedy
 * allocation on 40-, 200- and 1000-server clusters, and the
 * performance oracle used by monitoring.
 *
 * Decision-path mode (`--decision-path`): sweeps cluster size over
 * 40 / 200 / 1000 servers, drives an identical placement stream
 * through the incremental-index scheduler and the full_rescan legacy
 * path, verifies both picked identical placements, and emits
 * BENCH_decision_path.json. With `--baseline=FILE` the run fails if
 * the 200-server incremental mean regressed more than
 * `--max-regression` (default 0.25) against the recorded baseline —
 * the CI perf gate.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/common.hh"
#include "core/classifier.hh"
#include "core/scheduler.hh"
#include "linalg/completion.hh"
#include "linalg/svd.hh"

using namespace quasar;

namespace
{

linalg::Matrix
randomMatrix(size_t m, size_t n, uint64_t seed)
{
    stats::Rng rng(seed);
    linalg::Matrix a(m, n);
    for (size_t i = 0; i < m; ++i)
        for (size_t j = 0; j < n; ++j)
            a.at(i, j) = rng.normal(0.0, 1.0);
    return a;
}

/** Shared fixture state built once. */
struct Fixture
{
    std::vector<sim::Platform> catalog = sim::localPlatforms();
    profiling::Profiler profiler{catalog, {}};
    core::Classifier clf{profiler, {}, 7};
    core::Classifier clf_exh;
    workload::WorkloadFactory factory{stats::Rng(7777)};
    stats::Rng rng{888};

    Fixture()
        : clf_exh(profiler,
                  [] {
                      core::ClassifierConfig c;
                      c.exhaustive = true;
                      return c;
                  }(),
                  7)
    {
        auto seeds = bench::standardSeeds(factory, 4);
        clf.seedOffline(seeds, 0.0);
        clf_exh.seedOffline(seeds, 0.0);
        for (int i = 0; i < 60; ++i) {
            workload::Workload w = factory.randomWorkload("warm");
            auto d = profiler.profile(w, 0.0, rng);
            clf.classify(w, d);
            clf_exh.classify(w, d);
        }
    }

    static Fixture &get()
    {
        static Fixture f;
        return f;
    }
};

} // namespace

static void
BM_SvdJacobi(benchmark::State &state)
{
    auto a = randomMatrix(60, size_t(state.range(0)), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::svd(a, 8));
}
BENCHMARK(BM_SvdJacobi)->Arg(16)->Arg(32)->Arg(64);

static void
BM_RandomizedSvd(benchmark::State &state)
{
    auto a = randomMatrix(300, size_t(state.range(0)), 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::randomizedSvd(a, 8));
}
BENCHMARK(BM_RandomizedSvd)->Arg(64)->Arg(256)->Arg(1024);

static void
BM_PqFit(benchmark::State &state)
{
    stats::Rng rng(5);
    size_t rows = size_t(state.range(0));
    linalg::MaskedMatrix m(rows, 56);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < 56; ++c)
            if (r < 30 || rng.chance(0.05))
                m.set(r, c, rng.normal(1.0, 0.5));
    for (auto _ : state) {
        linalg::PqModel model;
        model.fit(m);
        benchmark::DoNotOptimize(model.trainRmse());
    }
}
BENCHMARK(BM_PqFit)->Arg(50)->Arg(150)->Arg(400);

static void
BM_FoldInRow(benchmark::State &state)
{
    stats::Rng rng(6);
    linalg::MaskedMatrix m(120, 56);
    for (size_t r = 0; r < 120; ++r)
        for (size_t c = 0; c < 56; ++c)
            if (r < 30 || rng.chance(0.06))
                m.set(r, c, rng.normal(1.0, 0.5));
    linalg::PqModel model;
    model.fit(m);
    std::vector<std::pair<size_t, double>> obs = {{3, 1.2}, {40, 0.8}};
    for (auto _ : state)
        benchmark::DoNotOptimize(model.foldInRow(obs));
}
BENCHMARK(BM_FoldInRow);

static void
BM_Classify4Parallel(benchmark::State &state)
{
    Fixture &f = Fixture::get();
    workload::Workload w =
        f.factory.hadoopJob("bench", 50.0);
    auto data = f.profiler.profile(w, 0.0, f.rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.clf.classify(w, data));
}
BENCHMARK(BM_Classify4Parallel);

static void
BM_ClassifyExhaustive(benchmark::State &state)
{
    Fixture &f = Fixture::get();
    workload::Workload w =
        f.factory.hadoopJob("bench", 50.0);
    auto data = f.profiler.profile(w, 0.0, f.rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.clf_exh.classify(w, data));
}
BENCHMARK(BM_ClassifyExhaustive);

namespace
{

/** The paper's testbeds plus a 5x EC2 mix for the 1000-server point. */
sim::Cluster
clusterOfSize(int servers)
{
    if (servers == 40)
        return sim::Cluster::localCluster();
    if (servers == 200)
        return sim::Cluster::ec2Cluster();
    auto catalog = sim::ec2Platforms();
    std::vector<int> counts = {6, 6, 8, 14, 6, 8, 16, 30,
                               8, 30, 8, 16, 30, 14};
    for (int &c : counts)
        c *= servers / 200;
    return sim::Cluster(catalog, counts);
}

} // namespace

static void
BM_GreedyAllocate(benchmark::State &state)
{
    // Profiler/classifier anchored on the *cluster's* catalog: the
    // estimate's platform-factor vector must have one entry per
    // catalog platform or ranking reads past its end.
    sim::Cluster cluster = clusterOfSize(int(state.range(0)));
    profiling::Profiler profiler(cluster.catalog(), {});
    core::Classifier clf(profiler, {}, 7);
    workload::WorkloadFactory factory{stats::Rng(7777)};
    clf.seedOffline(bench::standardSeeds(factory, 2), 0.0);
    stats::Rng rng(888);
    core::GreedyScheduler sched(cluster);
    workload::Workload w = factory.hadoopJob("bench", 50.0);
    w.id = 1;
    auto data = profiler.profile(w, 0.0, rng);
    auto est = clf.classify(w, data);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched.allocate(w, est, w.total_work / 600.0, nullptr,
                           true));
}
BENCHMARK(BM_GreedyAllocate)->Arg(40)->Arg(200)->Arg(1000);

static void
BM_OracleCurrentRate(benchmark::State &state)
{
    Fixture &f = Fixture::get();
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::GreedyScheduler sched(cluster);
    workload::Workload tmp = f.factory.hadoopJob("bench", 50.0);
    WorkloadId id = registry.add(tmp);
    workload::Workload &w = registry.get(id);
    auto data = f.profiler.profile(w, 0.0, f.rng);
    auto est = f.clf.classify(w, data);
    auto alloc = sched.allocate(w, est, w.total_work / 600.0, nullptr,
                                true);
    for (const auto &node : alloc->nodes) {
        sim::TaskShare share;
        share.workload = id;
        share.cores = node.cores;
        share.memory_gb = node.memory_gb;
        share.caused = w.causedPressure(0.0, node.cores);
        cluster.server(node.server).place(share);
    }
    workload::PerfOracle oracle(cluster, registry);
    for (auto _ : state)
        benchmark::DoNotOptimize(oracle.currentRate(w, 0.0));
}
BENCHMARK(BM_OracleCurrentRate);

// ---------------------------------------------------------------------------
// Decision-path mode: incremental index vs full_rescan, JSON + CI gate.
// ---------------------------------------------------------------------------

namespace
{

/** One workload ready to place: classified against the right catalog. */
struct StreamEntry
{
    workload::Workload w;
    core::WorkloadEstimate est;
};

/**
 * A deterministic stream of classified batch jobs. Classification
 * mutates the classifier's online history, so the stream is built
 * once per cluster size and replayed identically through both
 * decision paths.
 */
std::vector<StreamEntry>
makeStream(const std::vector<sim::Platform> &catalog, size_t n,
           uint64_t seed)
{
    profiling::Profiler profiler(catalog, {});
    core::Classifier clf(profiler, {}, seed);
    workload::WorkloadFactory factory{stats::Rng(seed ^ 0xBEEF)};
    clf.seedOffline(bench::standardSeeds(factory, 2), 0.0);
    stats::Rng rng(seed ^ 0xF00D);
    std::vector<StreamEntry> stream;
    stream.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        workload::Workload w =
            factory.hadoopJob("dp", rng.uniform(20.0, 120.0));
        w.id = WorkloadId(1 + i);
        auto data = profiler.profile(w, 0.0, rng);
        auto est = clf.classify(w, data);
        stream.push_back({std::move(w), std::move(est)});
    }
    return stream;
}

/**
 * Pre-populate ~2/3 of the servers with best-effort residents so the
 * contention ledgers are non-trivial and eviction planning runs — the
 * production-density shape the full_rescan path pays for per
 * placement.
 */
void
prepopulate(sim::Cluster &cluster, const workload::Workload &be)
{
    for (size_t i = 0; i < cluster.size(); ++i) {
        if (i % 3 == 2)
            continue;
        sim::Server &srv = cluster.server(ServerId(i));
        int cores = std::max(1, srv.platform().cores / 4);
        double mem = srv.platform().memory_gb / 8.0;
        for (int k = 0; k < 3; ++k) {
            if (!srv.canFit(cores, mem, 0.0))
                break;
            sim::TaskShare share;
            share.workload = WorkloadId(1000000 + i * 8 + size_t(k));
            share.cores = cores;
            share.memory_gb = mem;
            share.caused = be.causedPressure(0.0, cores);
            share.best_effort = true;
            srv.place(share);
        }
    }
}

struct ModeResult
{
    double mean_s = 0.0;
    std::vector<core::Allocation> allocs;
};

/**
 * Replay the placement stream on a fresh pre-populated cluster,
 * timing only the allocate() decisions; every decision is committed
 * (evictions applied, shares placed) so later placements see the
 * churn an online manager generates.
 */
ModeResult
runMode(int servers, bool full_rescan,
        const std::vector<StreamEntry> &stream,
        const workload::Workload &be)
{
    sim::Cluster cluster = clusterOfSize(servers);
    prepopulate(cluster, be);
    core::SchedulerConfig cfg;
    cfg.full_rescan = full_rescan;
    core::GreedyScheduler sched(cluster, cfg);

    ModeResult res;
    res.allocs.reserve(stream.size());
    double total = 0.0;
    for (const StreamEntry &e : stream) {
        auto t0 = std::chrono::steady_clock::now();
        auto alloc = sched.allocate(e.w, e.est, e.w.total_work / 600.0,
                                    nullptr, true);
        auto t1 = std::chrono::steady_clock::now();
        total += std::chrono::duration<double>(t1 - t0).count();
        if (alloc) {
            for (const auto &[sid, victim] : alloc->evictions)
                cluster.server(sid).remove(victim);
            for (const core::AllocationNode &node : alloc->nodes) {
                sim::TaskShare share;
                share.workload = e.w.id;
                share.cores = node.cores;
                share.memory_gb = node.memory_gb;
                share.storage_gb = e.w.storage_gb_per_node;
                share.caused = e.w.causedPressure(0.0, node.cores);
                cluster.server(node.server).place(share);
            }
            res.allocs.push_back(*alloc);
        } else {
            res.allocs.push_back({});
        }
    }
    res.mean_s = stream.empty() ? 0.0 : total / double(stream.size());
    return res;
}

/** Same placement decisions? (servers, columns, sizes, evictions) */
bool
sameDecisions(const std::vector<core::Allocation> &a,
              const std::vector<core::Allocation> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].nodes.size() != b[i].nodes.size() ||
            a[i].evictions != b[i].evictions ||
            a[i].degraded != b[i].degraded)
            return false;
        for (size_t j = 0; j < a[i].nodes.size(); ++j) {
            const auto &x = a[i].nodes[j];
            const auto &y = b[i].nodes[j];
            if (x.server != y.server || x.scale_up_col != y.scale_up_col ||
                x.cores != y.cores || x.memory_gb != y.memory_gb)
                return false;
        }
    }
    return true;
}

/**
 * Pull "incremental_mean_s" off the baseline's 200-server line; NaN
 * when the file or field is missing (no gate on first run).
 */
double
baseline200Mean(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return std::nan("");
    char line[512];
    double mean = std::nan("");
    while (std::fgets(line, sizeof(line), f)) {
        if (!std::strstr(line, "\"servers\": 200"))
            continue;
        const char *key = std::strstr(line, "\"incremental_mean_s\":");
        if (key)
            mean = std::atof(key + std::strlen("\"incremental_mean_s\":"));
        break;
    }
    std::fclose(f);
    return mean;
}

int
runDecisionPath(const std::string &out_path,
                const std::string &baseline_path, double max_regression)
{
    constexpr int kSizes[] = {40, 200, 1000};
    constexpr size_t kPlacements = 24;
    constexpr int kReps = 3;

    workload::WorkloadFactory factory{stats::Rng(31337)};
    workload::Workload be = factory.bestEffortJob("dp-filler");

    bench::banner("decision path: incremental index vs full_rescan");
    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"name\": \"decision_path\",\n"
                 "  \"placements\": %zu,\n  \"reps\": %d,\n"
                 "  \"clusters\": [\n",
                 kPlacements, kReps);

    bool all_identical = true;
    double mean200 = 0.0;
    for (size_t s = 0; s < 3; ++s) {
        int servers = kSizes[s];
        auto stream = makeStream(clusterOfSize(servers).catalog(),
                                 kPlacements, 97 + uint64_t(servers));
        // Min-of-means over repetitions: robust to CI noise, and the
        // equivalence check runs on the first repetition's decisions.
        double inc_mean = 0.0, full_mean = 0.0;
        bool identical = true;
        for (int rep = 0; rep < kReps; ++rep) {
            ModeResult inc = runMode(servers, false, stream, be);
            ModeResult full = runMode(servers, true, stream, be);
            inc_mean = rep == 0 ? inc.mean_s
                                : std::min(inc_mean, inc.mean_s);
            full_mean = rep == 0 ? full.mean_s
                                 : std::min(full_mean, full.mean_s);
            if (rep == 0)
                identical = sameDecisions(inc.allocs, full.allocs);
        }
        all_identical = all_identical && identical;
        if (servers == 200)
            mean200 = inc_mean;
        double speedup = inc_mean > 0.0 ? full_mean / inc_mean : 0.0;
        std::printf("  %4d servers: incremental %.3f ms  full_rescan "
                    "%.3f ms  speedup %.1fx  identical=%s\n",
                    servers, inc_mean * 1e3, full_mean * 1e3, speedup,
                    identical ? "yes" : "NO");
        std::fprintf(out,
                     "    {\"servers\": %d, \"incremental_mean_s\": "
                     "%.9g, \"full_rescan_mean_s\": %.9g, \"speedup\": "
                     "%.3f, \"identical\": %s}%s\n",
                     servers, inc_mean, full_mean, speedup,
                     identical ? "true" : "false", s + 1 < 3 ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: incremental and full_rescan paths "
                             "disagreed on placements\n");
        return 1;
    }
    if (!baseline_path.empty()) {
        double base = baseline200Mean(baseline_path);
        if (std::isnan(base)) {
            std::printf("no usable baseline at %s; skipping the "
                        "regression gate\n",
                        baseline_path.c_str());
        } else if (mean200 > base * (1.0 + max_regression)) {
            std::fprintf(stderr,
                         "FAIL: 200-server schedule-call mean %.3f ms "
                         "regressed >%.0f%% vs baseline %.3f ms\n",
                         mean200 * 1e3, max_regression * 100.0,
                         base * 1e3);
            return 1;
        } else {
            std::printf("regression gate ok: 200-server mean %.3f ms "
                        "vs baseline %.3f ms (limit +%.0f%%)\n",
                        mean200 * 1e3, base * 1e3,
                        max_regression * 100.0);
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool decision_path = false;
    std::string out_path = "BENCH_decision_path.json";
    std::string baseline_path;
    double max_regression = 0.25;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--decision-path")
            decision_path = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = arg.substr(11);
        else if (arg.rfind("--max-regression=", 0) == 0)
            max_regression = std::atof(arg.c_str() + 17);
    }
    if (decision_path)
        return runDecisionPath(out_path, baseline_path, max_regression);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
