/**
 * @file
 * Google-benchmark microbenchmarks for the decision-path latencies the
 * paper reports (Secs. 3.2-3.4, 6.5): SVD and PQ-reconstruction on
 * classification-sized matrices, fold-in of a new workload row, the
 * four parallel classifications vs the exhaustive one, greedy
 * allocation on 40- and 200-server clusters, and the performance
 * oracle used by monitoring.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "core/classifier.hh"
#include "core/scheduler.hh"
#include "linalg/completion.hh"
#include "linalg/svd.hh"

using namespace quasar;

namespace
{

linalg::Matrix
randomMatrix(size_t m, size_t n, uint64_t seed)
{
    stats::Rng rng(seed);
    linalg::Matrix a(m, n);
    for (size_t i = 0; i < m; ++i)
        for (size_t j = 0; j < n; ++j)
            a.at(i, j) = rng.normal(0.0, 1.0);
    return a;
}

/** Shared fixture state built once. */
struct Fixture
{
    std::vector<sim::Platform> catalog = sim::localPlatforms();
    profiling::Profiler profiler{catalog, {}};
    core::Classifier clf{profiler, {}, 7};
    core::Classifier clf_exh;
    workload::WorkloadFactory factory{stats::Rng(7777)};
    stats::Rng rng{888};

    Fixture()
        : clf_exh(profiler,
                  [] {
                      core::ClassifierConfig c;
                      c.exhaustive = true;
                      return c;
                  }(),
                  7)
    {
        auto seeds = bench::standardSeeds(factory, 4);
        clf.seedOffline(seeds, 0.0);
        clf_exh.seedOffline(seeds, 0.0);
        for (int i = 0; i < 60; ++i) {
            workload::Workload w = factory.randomWorkload("warm");
            auto d = profiler.profile(w, 0.0, rng);
            clf.classify(w, d);
            clf_exh.classify(w, d);
        }
    }

    static Fixture &get()
    {
        static Fixture f;
        return f;
    }
};

} // namespace

static void
BM_SvdJacobi(benchmark::State &state)
{
    auto a = randomMatrix(60, size_t(state.range(0)), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::svd(a, 8));
}
BENCHMARK(BM_SvdJacobi)->Arg(16)->Arg(32)->Arg(64);

static void
BM_RandomizedSvd(benchmark::State &state)
{
    auto a = randomMatrix(300, size_t(state.range(0)), 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::randomizedSvd(a, 8));
}
BENCHMARK(BM_RandomizedSvd)->Arg(64)->Arg(256)->Arg(1024);

static void
BM_PqFit(benchmark::State &state)
{
    stats::Rng rng(5);
    size_t rows = size_t(state.range(0));
    linalg::MaskedMatrix m(rows, 56);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < 56; ++c)
            if (r < 30 || rng.chance(0.05))
                m.set(r, c, rng.normal(1.0, 0.5));
    for (auto _ : state) {
        linalg::PqModel model;
        model.fit(m);
        benchmark::DoNotOptimize(model.trainRmse());
    }
}
BENCHMARK(BM_PqFit)->Arg(50)->Arg(150)->Arg(400);

static void
BM_FoldInRow(benchmark::State &state)
{
    stats::Rng rng(6);
    linalg::MaskedMatrix m(120, 56);
    for (size_t r = 0; r < 120; ++r)
        for (size_t c = 0; c < 56; ++c)
            if (r < 30 || rng.chance(0.06))
                m.set(r, c, rng.normal(1.0, 0.5));
    linalg::PqModel model;
    model.fit(m);
    std::vector<std::pair<size_t, double>> obs = {{3, 1.2}, {40, 0.8}};
    for (auto _ : state)
        benchmark::DoNotOptimize(model.foldInRow(obs));
}
BENCHMARK(BM_FoldInRow);

static void
BM_Classify4Parallel(benchmark::State &state)
{
    Fixture &f = Fixture::get();
    workload::Workload w =
        f.factory.hadoopJob("bench", 50.0);
    auto data = f.profiler.profile(w, 0.0, f.rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.clf.classify(w, data));
}
BENCHMARK(BM_Classify4Parallel);

static void
BM_ClassifyExhaustive(benchmark::State &state)
{
    Fixture &f = Fixture::get();
    workload::Workload w =
        f.factory.hadoopJob("bench", 50.0);
    auto data = f.profiler.profile(w, 0.0, f.rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.clf_exh.classify(w, data));
}
BENCHMARK(BM_ClassifyExhaustive);

static void
BM_GreedyAllocate(benchmark::State &state)
{
    Fixture &f = Fixture::get();
    sim::Cluster cluster = state.range(0) == 40
                               ? sim::Cluster::localCluster()
                               : sim::Cluster::ec2Cluster();
    workload::WorkloadRegistry registry;
    core::GreedyScheduler sched(cluster);
    workload::Workload w = f.factory.hadoopJob("bench", 50.0);
    w.id = registry.add(w);
    auto data = f.profiler.profile(w, 0.0, f.rng);
    auto est = f.clf.classify(w, data);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched.allocate(w, est, w.total_work / 600.0, nullptr,
                           true));
}
BENCHMARK(BM_GreedyAllocate)->Arg(40)->Arg(200);

static void
BM_OracleCurrentRate(benchmark::State &state)
{
    Fixture &f = Fixture::get();
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::GreedyScheduler sched(cluster);
    workload::Workload tmp = f.factory.hadoopJob("bench", 50.0);
    WorkloadId id = registry.add(tmp);
    workload::Workload &w = registry.get(id);
    auto data = f.profiler.profile(w, 0.0, f.rng);
    auto est = f.clf.classify(w, data);
    auto alloc = sched.allocate(w, est, w.total_work / 600.0, nullptr,
                                true);
    for (const auto &node : alloc->nodes) {
        sim::TaskShare share;
        share.workload = id;
        share.cores = node.cores;
        share.memory_gb = node.memory_gb;
        share.caused = w.causedPressure(0.0, node.cores);
        cluster.server(node.server).place(share);
    }
    workload::PerfOracle oracle(cluster, registry);
    for (auto _ : state)
        benchmark::DoNotOptimize(oracle.currentRate(w, 0.0));
}
BENCHMARK(BM_OracleCurrentRate);

BENCHMARK_MAIN();
