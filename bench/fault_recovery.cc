/**
 * @file
 * Fault-recovery evaluation (Sec. 4.4 fault tolerance): latency-
 * critical services and batch jobs run through a failure storm —
 * every server hosting a service crashes, and two whole fault zones
 * (half the cluster) go dark at the same instant — under Quasar and
 * under the reservation + least-loaded baseline. Reports the fraction
 * of queries meeting QoS before / during / after the storm and the
 * time until QoS returns to 95% of its pre-storm level.
 *
 * The capacity crunch is the point: with half the machines gone, the
 * baseline's over-sized reservations do not fit and its services wait,
 * while Quasar's right-sized allocations can be re-placed from their
 * existing classification signatures immediately.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "baselines/reservation_ll.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"
#include "sim/failure.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kHorizon = 12000.0;
constexpr double kStormAt = 4000.0;  // hosting sets + zones 0/1 crash
constexpr double kRepairAt = 5800.0; // everything returns

struct StormResult
{
    double qos_before = 0.0; ///< load-weighted QoS fraction, pre-storm.
    double qos_storm = 0.0;  ///< between storm and repair.
    double qos_after = 0.0;  ///< after full repair.
    /** Time until QoS is back at 95% of the pre-storm level, s. */
    double qos_recovery_s = 0.0;
    double longest_outage_s = 0.0; ///< worst single-service outage.
    size_t batch_done = 0;
    size_t crashes = 0;
};

/** Load-weighted mean QoS fraction of all services over [t0, t1). */
double
qosOver(const driver::ScenarioDriver &drv,
        const std::vector<WorkloadId> &services, double t0, double t1)
{
    double weighted = 0.0, offered = 0.0;
    for (WorkloadId id : services) {
        const driver::ServiceTrace *tr = drv.serviceTrace(id);
        if (!tr)
            continue;
        for (size_t i = 0; i < tr->qos_fraction.size(); ++i) {
            double t = tr->qos_fraction.timeAt(i);
            if (t < t0 || t >= t1)
                continue;
            double off = tr->offered_qps.valueAt(i);
            weighted += tr->qos_fraction.valueAt(i) * off;
            offered += off;
        }
    }
    return offered > 0.0 ? weighted / offered : 0.0;
}

template <typename MakeManager>
StormResult
runStorm(uint64_t seed, MakeManager make)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    auto manager = make(cluster, registry);
    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 10.0,
                                                    .record_every = 2});

    workload::WorkloadFactory factory{stats::Rng(seed)};
    std::vector<WorkloadId> services;
    services.push_back(registry.add(factory.webService(
        "web-a", 250.0, 0.1,
        std::make_shared<tracegen::FlatLoad>(250.0))));
    services.push_back(registry.add(factory.webService(
        "web-b", 150.0, 0.1,
        std::make_shared<tracegen::FlatLoad>(150.0))));
    services.push_back(registry.add(factory.memcachedService(
        "mc", 8e4, 2e-4, 24.0,
        std::make_shared<tracegen::FlatLoad>(8e4))));
    for (size_t i = 0; i < services.size(); ++i)
        drv.addArrival(services[i], 1.0 + double(i));

    // Enough long-running batch work that the surviving half of the
    // cluster is busy when the storm hits: re-placement then has to
    // fit into contended capacity, which separates right-sized
    // allocations from over-sized reservations.
    std::vector<WorkloadId> jobs;
    for (int i = 0; i < 30; ++i) {
        Workload job = factory.singleNodeJob(
            "job-" + std::to_string(i), i % 2 ? "mix" : "parsec");
        job.total_work *= 6.0;
        jobs.push_back(registry.add(job));
        drv.addArrival(jobs.back(), 30.0 * double(i + 1));
    }

    // Let placement settle, then aim the storm at whatever servers the
    // services actually landed on — plus half the cluster.
    drv.run(kStormAt - 500.0);
    sim::FaultInjector faults(cluster);
    std::vector<ServerId> victims;
    for (WorkloadId id : services)
        for (ServerId sid : cluster.serversHosting(id))
            if (std::find(victims.begin(), victims.end(), sid) ==
                victims.end())
                victims.push_back(sid);
    for (ServerId sid : victims) {
        faults.crashServer(kStormAt, sid);
        faults.recoverServer(kRepairAt, sid);
    }
    faults.crashZone(kStormAt, 0);
    faults.crashZone(kStormAt, 1);
    faults.recoverZone(kRepairAt, 0);
    faults.recoverZone(kRepairAt, 1);
    drv.installFaults(faults);

    // Track service outages (hosting set empty) tick by tick.
    std::unordered_map<WorkloadId, double> down_since;
    StormResult res;
    drv.setTickHook([&](double t) {
        for (WorkloadId id : services) {
            bool placed = !cluster.serversHosting(id).empty();
            auto it = down_since.find(id);
            if (!placed && it == down_since.end()) {
                down_since.emplace(id, t);
            } else if (placed && it != down_since.end()) {
                res.longest_outage_s =
                    std::max(res.longest_outage_s, t - it->second);
                down_since.erase(it);
            }
        }
    });
    drv.run(kHorizon);

    res.qos_before = qosOver(drv, services, 1000.0, kStormAt);
    res.qos_storm = qosOver(drv, services, kStormAt, kRepairAt);
    res.qos_after =
        qosOver(drv, services, kRepairAt + 500.0, kHorizon);

    // QoS recovery: first 60 s window after the storm whose
    // load-weighted QoS fraction is back at 95% of the pre-storm
    // level.
    res.qos_recovery_s = kHorizon - kStormAt;
    for (double t = kStormAt; t + 60.0 <= kHorizon; t += 60.0) {
        if (qosOver(drv, services, t, t + 60.0) >=
            0.95 * res.qos_before) {
            res.qos_recovery_s = t - kStormAt;
            break;
        }
    }

    for (WorkloadId id : jobs)
        if (registry.get(id).completed)
            ++res.batch_done;
    res.crashes = faults.stats().crashes;
    return res;
}

void
printRow(const char *label, const StormResult &r)
{
    std::printf("%-14s %8.1f%% %8.1f%% %8.1f%% %10.0f %10.0f %7zu/30\n",
                label, 100.0 * r.qos_before, 100.0 * r.qos_storm,
                100.0 * r.qos_after, r.qos_recovery_s,
                r.longest_outage_s, r.batch_done);
}

} // namespace

int
main()
{
    bench::banner("Fault recovery: QoS through a failure storm, "
                  "Quasar vs reservation+least-loaded");

    workload::WorkloadFactory seed_factory{stats::Rng(808)};
    auto offline = bench::standardSeeds(seed_factory, 4);

    auto make_reservation = [](auto &c, auto &r) {
        return std::make_unique<baselines::ReservationLLManager>(c, r,
                                                                 77);
    };
    auto make_quasar = [&offline](auto &c, auto &r) {
        core::QuasarConfig cfg;
        cfg.seed = 880;
        auto m = std::make_unique<core::QuasarManager>(c, r, cfg);
        m->seedOffline(offline, 0.0);
        return m;
    };

    std::printf("\nstorm at t=%.0fs: every server hosting a service "
                "crashes AND fault zones 0+1\n(half the cluster) go "
                "dark; everything is repaired at t=%.0fs\n",
                kStormAt, kRepairAt);

    bench::section("queries meeting QoS / recovery to 95% of pre-storm");
    std::printf("%-14s %9s %9s %9s %10s %10s %10s\n", "manager",
                "pre-QoS", "storm", "post-QoS", "QoS rec s",
                "outage s", "batch");
    StormResult rl = runStorm(4242, make_reservation);
    printRow("reservation", rl);
    StormResult qs = runStorm(4242, make_quasar);
    printRow("quasar", qs);

    std::printf("\ncrashes injected: reservation %zu, quasar %zu "
                "(storm aimed at each manager's own placement)\n",
                rl.crashes, qs.crashes);
    std::printf("\npaper expectation: Quasar re-places displaced "
                "workloads from existing classification signatures "
                "(no re-profiling) with right-sized allocations that "
                "still fit the surviving half of the cluster, so QoS "
                "recovers at least as fast as under reservation-based "
                "management, whose over-sized reservations must wait "
                "for repair.\n");

    bool at_least_as_fast =
        qs.qos_recovery_s <= rl.qos_recovery_s + 1e-9;
    std::printf("quasar QoS recovery at least as fast: %s "
                "(%.0f s vs %.0f s)\n",
                at_least_as_fast ? "yes" : "NO", qs.qos_recovery_s,
                rl.qos_recovery_s);
    return at_least_as_fast ? 0 : 1;
}
