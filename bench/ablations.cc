/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. scale-up-first vs scale-out-first greedy sizing (paper Sec. 3.3
 *     notes the heuristic is replaceable),
 *  2. the misclassification feedback loop on/off (Sec. 3.2),
 *  3. proactive phase detection on/off (Sec. 4.1),
 *  4. interference awareness on/off in the scheduler (the Paragon
 *     heritage).
 *
 * Each ablation runs a compact mixed scenario on the local cluster and
 * reports target attainment and utilization.
 */

#include <cmath>

#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kHorizon = 12000.0;

struct Outcome
{
    double mean_norm = 0.0;   ///< mean perf normalized to target.
    double frac_on_target = 0.0;
    double mean_util = 0.0;
    size_t adjustments = 0;
};

Outcome
runScenario(core::QuasarConfig cfg, uint64_t seed,
            bool with_phase_changes)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::QuasarManager mgr(cluster, registry, cfg);
    workload::WorkloadFactory seeder{stats::Rng(777)};
    mgr.seedOffline(bench::standardSeeds(seeder, 4), 0.0);
    driver::ScenarioDriver drv(cluster, registry, mgr,
                               driver::DriverConfig{.tick_s = 10.0,
                                                    .record_every = 3});
    workload::WorkloadFactory factory{stats::Rng(seed)};
    std::vector<WorkloadId> primary;
    for (int i = 0; i < 10; ++i) {
        Workload j = factory.hadoopJob("j" + std::to_string(i),
                                       factory.rng().uniform(5, 50));
        j.total_work *= 3.0;
        j.target = workload::PerformanceTarget::completionTime(
            1.2 * bench::sweepBestCompletion(j, cluster.catalog(), 4,
                                             8),
            j.total_work);
        if (with_phase_changes && i % 2 == 0)
            factory.addPhaseChange(j, 600.0 + 200.0 * i);
        WorkloadId id = registry.add(j);
        primary.push_back(id);
        drv.addArrival(id, 20.0 * (i + 1));
    }
    for (int i = 0; i < 3; ++i) {
        double q = factory.rng().uniform(5e4, 1.5e5);
        Workload mc = factory.memcachedService(
            "m" + std::to_string(i), q, 2e-4, 40.0,
            std::make_shared<tracegen::FluctuatingLoad>(0.7 * q,
                                                        0.3 * q,
                                                        4000.0));
        WorkloadId id = registry.add(mc);
        primary.push_back(id);
        drv.addArrival(id, 10.0 * (i + 1));
    }
    for (double t = 4.0; t < kHorizon * 0.6; t += 8.0) {
        Workload be = factory.bestEffortJob("be");
        be.total_work *= 2.0;
        drv.addArrival(registry.add(be), t);
    }
    drv.run(kHorizon);

    Outcome out;
    int on_target = 0;
    for (WorkloadId id : primary) {
        const Workload &w = registry.get(id);
        double norm;
        if (w.type == workload::WorkloadType::Analytics) {
            norm = w.completed ? w.target.completion_time_s /
                                     (w.completion_time -
                                      w.arrival_time)
                               : w.work_done / w.total_work;
        } else {
            norm = drv.meanNormalizedPerf(id);
        }
        norm = std::min(norm, 1.25);
        out.mean_norm += norm;
        if (norm >= 0.9)
            ++on_target;
    }
    out.mean_norm /= double(primary.size());
    out.frac_on_target = double(on_target) / double(primary.size());
    auto means = drv.cpuUsedGrid().windowMeans(300.0, kHorizon * 0.6);
    for (double m : means)
        out.mean_util += m;
    out.mean_util /= double(means.size());
    const core::QuasarStats &st = mgr.stats();
    out.adjustments = st.scale_up_adjustments +
                      st.scale_out_adjustments + st.rescheduled;
    return out;
}

void
printRow(const char *name, const Outcome &o)
{
    std::printf("%-28s %10.2f %12.0f%% %10.1f%% %8zu\n", name,
                o.mean_norm, 100.0 * o.frac_on_target,
                100.0 * o.mean_util, o.adjustments);
}

} // namespace

int
main()
{
    bench::banner("Ablations: Quasar design choices");
    std::printf("\n%-28s %10s %13s %11s %8s\n", "variant", "perf/tgt",
                "on-target", "CPU util", "adjusts");

    const uint64_t seed = 7117;

    core::QuasarConfig base;
    base.seed = 1;
    printRow("quasar (default)", runScenario(base, seed, false));

    core::QuasarConfig out_first = base;
    out_first.scheduler.scale_up_first = false;
    printRow("scale-out-first sizing",
             runScenario(out_first, seed, false));

    core::QuasarConfig no_feedback = base;
    no_feedback.feedback_loop = false;
    printRow("no feedback loop",
             runScenario(no_feedback, seed, false));

    core::QuasarConfig blind = base;
    blind.scheduler.slope_guess = 0.0; // ignore interference estimates
    blind.scheduler.max_resident_loss = 1.0;
    printRow("interference-blind",
             runScenario(blind, seed, false));

    core::QuasarConfig no_partition = base;
    no_partition.resource_partitioning = false;
    printRow("no resource partitioning",
             runScenario(no_partition, seed, false));

    core::QuasarConfig no_predict = base;
    no_predict.predict_lead_s = 0.0;
    printRow("reactive service sizing",
             runScenario(no_predict, seed, false));

    bench::section("with phase-changing workloads (Sec. 4.1)");
    std::printf("%-28s %10s %13s %11s %8s\n", "variant", "perf/tgt",
                "on-target", "CPU util", "adjusts");
    core::QuasarConfig proactive = base;
    printRow("proactive detection on",
             runScenario(proactive, seed, true));
    core::QuasarConfig reactive_only = base;
    reactive_only.proactive_detection = false;
    printRow("reactive only",
             runScenario(reactive_only, seed, true));

    std::printf("\nexpected shape: scale-out-first thrashes (many more "
                "adjustments at lower utilization); interference "
                "blindness and a disabled feedback loop are partially "
                "compensated by runtime adaptation (more corrective "
                "work for similar end performance) — the static "
                "placement quality the paper measures matters most "
                "for managers without Quasar's monitoring loop.\n");
    return 0;
}
