/**
 * @file
 * Reproduces paper Table 2: validation of the classification engine.
 *
 * Workloads: 10 Hadoop jobs, 10 memcached loads, 10 webserver loads,
 * and 413 single-node benchmarks. For each, the four parallel
 * classifications run from the default 2-entries-per-row profiling
 * density, and errors are measured against noise-free exhaustive
 * characterization. The single exhaustive classification (all
 * allocation x assignment combinations in one matrix) is evaluated on
 * the same workloads for the paper's comparison columns.
 */

#include <chrono>
#include <cmath>

#include "bench/common.hh"
#include "core/classifier.hh"
#include "stats/summary.hh"

using namespace quasar;
using workload::Workload;

namespace
{

struct ErrorSet
{
    stats::Samples scale_up;
    stats::Samples scale_out;
    stats::Samples heterogeneity;
    stats::Samples interference;
    stats::Samples exhaustive; ///< pooled errors, exhaustive mode.
    double decision_seconds = 0.0;
    double exhaustive_seconds = 0.0;
    size_t count = 0;
};

/** Relative |est-true|/true, guarding tiny denominators. */
double
relErr(double est, double truth)
{
    return std::fabs(est - truth) / std::max(std::fabs(truth), 1e-9);
}

void
evaluate(const Workload &w, core::Classifier &clf,
         core::Classifier &clf_exh, const profiling::Profiler &profiler,
         const profiling::Profiler &truth_prof, stats::Rng &rng,
         ErrorSet &out)
{
    const auto &catalog = profiler.catalog();
    auto data = profiler.profile(w, 0.0, rng);

    auto t0 = std::chrono::steady_clock::now();
    auto est = clf.classify(w, data);
    auto t1 = std::chrono::steady_clock::now();
    auto est_exh = clf_exh.classify(w, data);
    auto t2 = std::chrono::steady_clock::now();
    out.decision_seconds += std::chrono::duration<double>(t1 - t0).count();
    out.exhaustive_seconds +=
        std::chrono::duration<double>(t2 - t1).count();
    ++out.count;

    stats::Rng z(1); // noise-free rows ignore it

    auto su_true = truth_prof.denseScaleUpRow(w, 0.0, z);
    for (size_t c = 0; c < su_true.size(); ++c) {
        out.scale_up.add(relErr(est.scale_up_perf[c], su_true[c]));
        out.exhaustive.add(
            relErr(est_exh.scale_up_perf[c], su_true[c]));
    }

    auto ref = profiling::Profiler::referenceConfig(
        catalog[profiler.scaleUpPlatform()], w.type);
    if (workload::isDistributed(w.type)) {
        auto so_true = truth_prof.denseScaleOutRow(w, 0.0, ref, z);
        for (size_t c = 0; c < so_true.size(); ++c) {
            double truth = so_true[c] / so_true[0];
            out.scale_out.add(
                relErr(est.scale_out_speedup[c], truth));
            out.exhaustive.add(
                relErr(est_exh.scale_out_speedup[c], truth));
        }
    }

    auto het_true = truth_prof.denseHeterogeneityRow(w, 0.0, z);
    double hn = het_true[profiler.scaleUpPlatform()];
    for (size_t c = 0; c < het_true.size(); ++c) {
        out.heterogeneity.add(
            relErr(est.platform_factor[c], het_true[c] / hn));
        out.exhaustive.add(
            relErr(est_exh.platform_factor[c], het_true[c] / hn));
    }

    auto tol_true = truth_prof.denseInterferenceRow(w, 0.0, ref);
    for (size_t c = 0; c < tol_true.size(); ++c) {
        // Tolerated intensities live in [0,1]; absolute error is the
        // natural metric (a relative error at intensity 0.05 would be
        // meaningless).
        out.interference.add(std::fabs(est.tolerated[c] - tol_true[c]));
        out.exhaustive.add(
            std::fabs(est_exh.tolerated[c] - tol_true[c]));
    }
}

void
printRow(const char *name, const ErrorSet &e)
{
    auto fmt = [](const stats::Samples &s) {
        return stats::formatErrorReport(stats::makeErrorReport(s));
    };
    std::printf("%-18s\n", name);
    std::printf("  scale-up     : %s\n", fmt(e.scale_up).c_str());
    if (e.scale_out.count())
        std::printf("  scale-out    : %s\n", fmt(e.scale_out).c_str());
    std::printf("  heterogeneity: %s\n", fmt(e.heterogeneity).c_str());
    std::printf("  interference : %s\n", fmt(e.interference).c_str());
    std::printf("  exhaustive   : %s\n", fmt(e.exhaustive).c_str());
    std::printf("  decision time: %.1f ms (4-parallel), %.1f ms "
                "(exhaustive)\n",
                1e3 * e.decision_seconds / double(e.count),
                1e3 * e.exhaustive_seconds / double(e.count));
}

} // namespace

int
main()
{
    bench::banner("Table 2: classification-engine validation "
                  "(avg / 90th pct / max error)");
    std::printf("(interference errors are absolute, on tolerated "
                "intensities in [0,1])\n");

    auto catalog = sim::localPlatforms();
    profiling::Profiler profiler(catalog, {});
    profiling::ProfilerConfig noise_free;
    noise_free.noise_sigma = 0.0;
    profiling::Profiler truth_prof(catalog, noise_free);

    core::ClassifierConfig cfg;
    core::Classifier clf(profiler, cfg, 7);
    core::ClassifierConfig cfg_exh = cfg;
    cfg_exh.exhaustive = true;
    core::Classifier clf_exh(profiler, cfg_exh, 7);

    workload::WorkloadFactory factory{stats::Rng(2014)};
    auto seeds = bench::standardSeeds(factory);
    std::printf("\nseeding classifier with %zu offline-profiled "
                "workloads...\n", seeds.size());
    clf.seedOffline(seeds, 0.0);
    clf_exh.seedOffline(seeds, 0.0);

    // Warm the online history as a production cluster would have
    // (every scheduled workload contributes its profiling row).
    stats::Rng rng(99);
    for (int i = 0; i < 150; ++i) {
        Workload w = factory.randomWorkload("warm");
        auto d = profiler.profile(w, 0.0, rng);
        clf.classify(w, d);
        clf_exh.classify(w, d);
    }

    static const char *families[] = {"spec-int", "spec-fp", "parsec",
                                     "splash2",  "minebench",
                                     "bioparallel", "specjbb", "mix"};

    ErrorSet hadoop_err;
    for (int i = 0; i < 10; ++i)
        evaluate(factory.hadoopJob("hadoop",
                                   factory.rng().uniform(1.0, 300.0)),
                 clf, clf_exh, profiler, truth_prof, rng, hadoop_err);

    ErrorSet mc_err;
    for (int i = 0; i < 10; ++i) {
        double q = factory.rng().uniform(5e4, 4e5);
        evaluate(factory.memcachedService(
                     "memcached", q, 200e-6, 60.0,
                     std::make_shared<tracegen::FlatLoad>(q)),
                 clf, clf_exh, profiler, truth_prof, rng, mc_err);
    }

    ErrorSet web_err;
    for (int i = 0; i < 10; ++i) {
        double q = factory.rng().uniform(100.0, 500.0);
        evaluate(factory.webService(
                     "webserver", q, 0.1,
                     std::make_shared<tracegen::FlatLoad>(q)),
                 clf, clf_exh, profiler, truth_prof, rng, web_err);
    }

    ErrorSet single_err;
    for (int i = 0; i < 413; ++i)
        evaluate(factory.singleNodeJob("single", families[i % 8]), clf,
                 clf_exh, profiler, truth_prof, rng, single_err);

    bench::section("results (paper Table 2 format)");
    printRow("Hadoop (10 jobs)", hadoop_err);
    printRow("memcached (10)", mc_err);
    printRow("webserver (10)", web_err);
    printRow("single-node (413)", single_err);

    std::printf("\npaper reference: avg errors < 8%% across types, max "
                "< 17%%; exhaustive slightly worse on average with a "
                "tighter max, and ~100x the decision time.\n");
    return 0;
}
