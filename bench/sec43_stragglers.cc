/**
 * @file
 * Reproduces the paper's Sec. 4.3 straggler-detection comparison:
 * Quasar flags Hadoop stragglers (candidates >= 50% slower than the
 * median, confirmed by in-place interference reclassification) ~19%
 * earlier than Hadoop's speculative execution and ~8% earlier than
 * LATE, while the probe confirmation filters false positives.
 */

#include "bench/common.hh"
#include "core/straggler.hh"
#include "stats/summary.hh"

using namespace quasar;
using core::DetectionResult;
using core::DetectorConfig;
using core::TaskWave;

int
main()
{
    bench::banner("Sec. 4.3: straggler detection — Quasar vs Hadoop "
                  "speculative execution vs LATE");

    stats::Rng rng(43);
    DetectorConfig cfg;

    stats::Samples hadoop_t, late_t, quasar_t;
    stats::Samples hadoop_recall, late_recall, quasar_recall;
    size_t hadoop_fp = 0, late_fp = 0, quasar_fp = 0;
    const int waves = 40;

    for (int i = 0; i < waves; ++i) {
        TaskWave wave = TaskWave::make(rng, 80, 300.0, 0.08, 3.0);
        DetectionResult h = detectHadoop(wave, cfg, rng);
        DetectionResult l = detectLate(wave, cfg, rng);
        DetectionResult q = detectQuasar(wave, cfg, rng);
        if (h.meanDetectTime() > 0)
            hadoop_t.add(h.meanDetectTime());
        if (l.meanDetectTime() > 0)
            late_t.add(l.meanDetectTime());
        if (q.meanDetectTime() > 0)
            quasar_t.add(q.meanDetectTime());
        hadoop_recall.add(h.recall(wave));
        late_recall.add(l.recall(wave));
        quasar_recall.add(q.recall(wave));
        hadoop_fp += h.falsePositives(wave);
        late_fp += l.falsePositives(wave);
        quasar_fp += q.falsePositives(wave);
    }

    std::printf("\n%d waves of 80 map tasks (median 300 s, 8%% "
                "stragglers at 3x slowdown)\n\n", waves);
    std::printf("%-22s %14s %8s %6s\n", "detector",
                "mean detect (s)", "recall", "FPs");
    std::printf("%-22s %14.1f %7.1f%% %6zu\n",
                "hadoop speculative", hadoop_t.mean(),
                100.0 * hadoop_recall.mean(), hadoop_fp);
    std::printf("%-22s %14.1f %7.1f%% %6zu\n", "LATE", late_t.mean(),
                100.0 * late_recall.mean(), late_fp);
    std::printf("%-22s %14.1f %7.1f%% %6zu\n",
                "quasar (probe-confirm)", quasar_t.mean(),
                100.0 * quasar_recall.mean(), quasar_fp);

    double vs_hadoop = 100.0 * (hadoop_t.mean() - quasar_t.mean()) /
                       hadoop_t.mean();
    double vs_late =
        100.0 * (late_t.mean() - quasar_t.mean()) / late_t.mean();
    std::printf("\nquasar detects %.1f%% earlier than hadoop "
                "(paper: 19%%) and %.1f%% earlier than LATE "
                "(paper: 8%%)\n", vs_hadoop, vs_late);
    return 0;
}
