/**
 * @file
 * Reproduces paper Fig. 2 (with Table 1 configurations): the impact of
 * heterogeneity, interference, scale-out, scale-up, and dataset on a
 * representative Hadoop job (top half) and a memcached service (bottom
 * half). For Hadoop we print speedups over one fully-allocated node of
 * platform A with the min/median/max over per-server allocations (the
 * paper's violin range); for memcached we print the achievable QPS at
 * the latency QoS (the knee of the latency-throughput curves).
 */

#include <algorithm>
#include <cmath>

#include "bench/common.hh"
#include "interference/microbench.hh"
#include "workload/queueing.hh"

using namespace quasar;
using workload::ScaleUpConfig;
using workload::Workload;

namespace
{

/** min/median/max of a Hadoop job's node rate over all allocations. */
struct Range
{
    double min = 0.0, med = 0.0, max = 0.0;
};

Range
rateRange(const Workload &w, const sim::Platform &p,
          const interference::IVector &contention)
{
    std::vector<double> rates;
    for (const ScaleUpConfig &cfg : workload::scaleUpGrid(p, w.type))
        rates.push_back(w.truth.nodeRate(p, cfg, contention));
    std::sort(rates.begin(), rates.end());
    Range r;
    r.min = rates.front();
    r.med = rates[rates.size() / 2];
    r.max = rates.back();
    return r;
}

/** Full-node configuration for a platform. */
ScaleUpConfig
fullNode(const sim::Platform &p)
{
    ScaleUpConfig cfg;
    cfg.cores = p.cores;
    cfg.memory_gb = p.memory_gb;
    cfg.knobs.mappers_per_node = std::min(12, p.cores);
    cfg.knobs.heap_gb = 1.0;
    return cfg;
}

interference::IVector
pattern(size_t source_idx, double intensity)
{
    auto v = interference::zeroVector();
    v[source_idx] = intensity;
    return v;
}

} // namespace

int
main()
{
    bench::banner("Fig. 2: heterogeneity / interference / scale-out / "
                  "scale-up / dataset impact");

    auto catalog = sim::localPlatforms();
    const sim::Platform &pA = catalog[0];
    const sim::Platform &pD = catalog[3];

    workload::WorkloadFactory factory{stats::Rng(77)};
    Workload hadoop = factory.hadoopJob("netflix-recsys", 100.0);
    Workload mc = factory.memcachedService(
        "memcached", 300e3, 1e-3, 64.0,
        std::make_shared<tracegen::FlatLoad>(300e3));

    auto quiet = interference::zeroVector();
    double base_a =
        hadoop.truth.nodeRate(pA, fullNode(pA), quiet);

    bench::section("Hadoop: heterogeneity (speedup over one full node "
                   "of platform A; min/med/max over allocations)");
    std::printf("%-10s %8s %8s %8s\n", "platform", "min", "median",
                "max");
    double het_max = 0.0;
    for (const sim::Platform &p : catalog) {
        Range r = rateRange(hadoop, p, quiet);
        het_max = std::max(het_max, r.max / base_a);
        std::printf("%-10s %8.2f %8.2f %8.2f\n", p.name.c_str(),
                    r.min / base_a, r.med / base_a, r.max / base_a);
    }
    std::printf("=> max heterogeneity spread: %.1fx (paper: ~7x across "
                "platforms, ~10x with per-server allocation)\n", het_max);

    bench::section("Hadoop: interference on platform A (speedup vs "
                   "quiet, per Table 1 pattern, intensity 0.8)");
    std::printf("%-10s %8s %8s %8s\n", "pattern", "min", "median",
                "max");
    Range quiet_r = rateRange(hadoop, pA, quiet);
    std::printf("%-10s %8.2f %8.2f %8.2f\n", "none", 1.0, 1.0, 1.0);
    for (size_t s = 0; s < interference::kNumSources; ++s) {
        Range r = rateRange(hadoop, pA, pattern(s, 0.8));
        std::printf("%-10s %8.2f %8.2f %8.2f\n",
                    interference::sourceName(
                        interference::sourceAt(s)).c_str(),
                    r.min / quiet_r.min, r.med / quiet_r.med,
                    r.max / quiet_r.max);
    }

    bench::section("Hadoop: scale-out on platform A (job speedup vs "
                   "one node)");
    std::printf("%-8s %8s %8s %8s\n", "nodes", "min", "median", "max");
    for (int n = 1; n <= 8; ++n) {
        auto grid = workload::scaleUpGrid(pA, hadoop.type);
        std::vector<double> speedups;
        for (const ScaleUpConfig &cfg : grid) {
            double r1 = hadoop.truth.nodeRate(pA, cfg, quiet);
            std::vector<double> rates(size_t(n), r1);
            speedups.push_back(hadoop.truth.jobRate(rates) / r1);
        }
        std::sort(speedups.begin(), speedups.end());
        std::printf("%-8d %8.2f %8.2f %8.2f\n", n, speedups.front(),
                    speedups[speedups.size() / 2], speedups.back());
    }

    bench::section("Hadoop: dataset impact on platform A (rate ratio "
                   "vs dataset A)");
    double ds_base = 0.0;
    const char *ds_names[] = {"A: netflix 2.1GB", "B: mahout 10GB",
                              "C: wikipedia 55GB"};
    double ds_sizes[] = {2.1, 10.0, 55.0};
    for (int i = 0; i < 3; ++i) {
        Workload j = factory.hadoopJob("ds", ds_sizes[i]);
        double r = j.truth.nodeRate(pA, fullNode(pA), quiet);
        if (i == 0)
            ds_base = r;
        std::printf("%-20s rate ratio %.2f  (total work ratio %.1fx)\n",
                    ds_names[i], r / ds_base,
                    j.total_work /
                        (ds_sizes[0] * j.total_work / j.dataset_gb));
    }

    // ----- memcached half -----
    auto knee = [&](const sim::Platform &p, const ScaleUpConfig &cfg,
                    const interference::IVector &iv) {
        double rate = mc.truth.nodeRate(p, cfg, iv);
        double cap = mc.truth.capacityQps(rate);
        return workload::maxQpsWithinQos(cap, 1e-3); // 1 ms p99 knee
    };

    bench::section("memcached: heterogeneity (kQPS at 1ms p99 knee, "
                   "full node)");
    for (const sim::Platform &p : catalog)
        std::printf("%-10s %10.0f kQPS\n", p.name.c_str(),
                    knee(p, fullNode(p), quiet) / 1e3);

    bench::section("memcached: interference on platform D (knee kQPS "
                   "per pattern, intensity 0.8)");
    std::printf("%-10s %10.0f kQPS\n", "none",
                knee(pD, fullNode(pD), quiet) / 1e3);
    for (size_t s = 0; s < interference::kNumSources; ++s)
        std::printf("%-10s %10.0f kQPS\n",
                    interference::sourceName(
                        interference::sourceAt(s)).c_str(),
                    knee(pD, fullNode(pD), pattern(s, 0.8)) / 1e3);

    bench::section("memcached: scale-up on platform D (knee kQPS vs "
                   "cores, full memory)");
    for (int cores : {2, 4, 8}) {
        ScaleUpConfig cfg = fullNode(pD);
        cfg.cores = std::min(cores, pD.cores);
        std::printf("%2d cores  %10.0f kQPS\n", cfg.cores,
                    knee(pD, cfg, quiet) / 1e3);
    }

    bench::section("memcached: dataset/query-mix impact on platform D "
                   "(knee kQPS across three service variants)");
    const char *mix_names[] = {"A: 100B reads", "B: 2KB reads",
                               "C: 100B rd-wr"};
    for (int i = 0; i < 3; ++i) {
        Workload v = factory.memcachedService(
            "mc-mix", 300e3, 1e-3, 64.0,
            std::make_shared<tracegen::FlatLoad>(300e3));
        double rate = v.truth.nodeRate(pD, fullNode(pD), quiet);
        std::printf("%-16s %10.0f kQPS\n", mix_names[i],
                    workload::maxQpsWithinQos(
                        v.truth.capacityQps(rate), 1e-3) / 1e3);
    }

    std::printf("\npaper reference: choice of platform ~7x, per-server "
                "allocation ~10x, interference up to 10x, dataset ~3x; "
                "memcached knee moves ~3-8x with platform, cores, and "
                "interference.\n");
    return 0;
}
