/**
 * @file
 * Shared helpers for the experiment benches: standard seed-workload
 * sets, table formatting, and scenario glue. Each bench binary
 * regenerates one table or figure of the paper and prints the same
 * rows/series the paper reports.
 */

#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "workload/factory.hh"

namespace quasar::bench
{

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "=================================================="
                "============\n",
                title.c_str());
}

/** Sub-section header. */
inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/**
 * The offline-characterized seed set used to anchor classification
 * (paper: 20-30 representative applications). Deterministic for a
 * given rng.
 */
inline std::vector<workload::Workload>
standardSeeds(workload::WorkloadFactory &factory, size_t per_family = 5)
{
    std::vector<workload::Workload> seeds;
    auto &rng = factory.rng();
    for (size_t i = 0; i < per_family; ++i) {
        seeds.push_back(
            factory.hadoopJob("seed-hadoop", rng.uniform(5.0, 250.0)));
        seeds.push_back(
            factory.sparkJob("seed-spark", rng.uniform(5.0, 60.0)));
        seeds.push_back(
            factory.stormJob("seed-storm", rng.uniform(2.0, 40.0)));
        double mq = rng.uniform(5e4, 3e5);
        seeds.push_back(factory.memcachedService(
            "seed-memcached", mq, 200e-6, 50.0,
            std::make_shared<tracegen::FlatLoad>(mq)));
        double wq = rng.uniform(100.0, 400.0);
        seeds.push_back(factory.webService(
            "seed-web", wq, 0.1,
            std::make_shared<tracegen::FlatLoad>(wq)));
        double cq = rng.uniform(3e3, 15e3);
        seeds.push_back(factory.cassandraService(
            "seed-cassandra", cq, 30e-3, 200.0,
            std::make_shared<tracegen::FlatLoad>(cq)));
    }
    static const char *families[] = {"spec-int", "spec-fp", "parsec",
                                     "splash2",  "minebench",
                                     "bioparallel", "specjbb", "mix"};
    for (size_t i = 0; i < per_family; ++i)
        for (const char *fam : families)
            seeds.push_back(factory.singleNodeJob("seed-single", fam));
    return seeds;
}

/**
 * The best completion time a parameter sweep finds for an analytics
 * job: the truth-optimal uniform allocation over platforms,
 * configurations, and node counts (bounded by servers available per
 * platform). The paper sets job targets this way.
 */
inline double
sweepBestCompletion(const workload::Workload &w,
                    const std::vector<sim::Platform> &catalog,
                    int servers_per_platform, int max_nodes = 12)
{
    // Best per-node rate of every server in the cluster, then the
    // best prefix of the descending ranking (mixed platforms allowed,
    // exactly what a scheduler could achieve on an idle cluster).
    std::vector<double> node_rates;
    for (const sim::Platform &p : catalog) {
        double best_node = 0.0;
        for (const workload::ScaleUpConfig &cfg :
             workload::scaleUpGrid(p, w.type))
            best_node = std::max(best_node,
                                 w.truth.nodeRateQuiet(p, cfg));
        for (int i = 0; i < servers_per_platform; ++i)
            node_rates.push_back(best_node);
    }
    std::sort(node_rates.rbegin(), node_rates.rend());
    double best_rate = 0.0;
    std::vector<double> prefix;
    for (double r : node_rates) {
        if (int(prefix.size()) >= max_nodes)
            break;
        prefix.push_back(r);
        best_rate = std::max(best_rate, w.truth.jobRate(prefix));
    }
    return w.total_work / best_rate;
}

} // namespace quasar::bench

