/**
 * @file
 * Reproduces paper Fig. 5 and Table 3: a single Hadoop job at a time
 * on the 40-server local cluster. For each of ten Mahout-style jobs
 * (datasets 1-900 GB) we run the job under the Hadoop self-scheduler
 * (dataset-driven sizing, default knobs, least-loaded placement) and
 * under Quasar, and report the execution-time reduction plus the gap
 * to the target (the best completion time found by a parameter sweep).
 * Table 3 prints the parameter settings both managers chose for job
 * H8.
 */

#include <cmath>

#include "baselines/framework_scheduler.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using workload::ScaleUpConfig;
using workload::Workload;

namespace
{

/** Run one job under a manager; returns completion seconds. */
template <typename MakeManager>
double
runOne(const Workload &job, MakeManager make)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    auto manager = make(cluster, registry);
    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 10.0});
    WorkloadId id = registry.add(job);
    drv.addArrival(id, 0.0);
    drv.run(400000.0);
    const Workload &w = registry.get(id);
    return w.completed ? w.completion_time - w.arrival_time : -1.0;
}

} // namespace

int
main()
{
    bench::banner("Fig. 5: single Hadoop job, Quasar vs the Hadoop "
                  "self-scheduler (40-server local cluster)");

    auto catalog = sim::localPlatforms();
    workload::WorkloadFactory factory{stats::Rng(42)};
    auto seeds = bench::standardSeeds(factory, 4);

    // Datasets spanning the paper's 1-900 GB range.
    double dataset_gb[10] = {1,  5,   12,  20,  55,
                             90, 140, 220, 500, 900};

    std::printf("\n%-5s %9s %12s %12s %10s %12s\n", "job", "dataset",
                "hadoop (s)", "quasar (s)", "speedup", "gap-to-tgt");

    double sum_speedup = 0.0, sum_gap = 0.0, sum_needed = 0.0;
    Workload h8;
    ScaleUpConfig h8_quasar_cfg;
    std::vector<std::string> h8_platforms;

    for (int i = 0; i < 10; ++i) {
        Workload job = factory.hadoopJob("H" + std::to_string(i + 1),
                                         dataset_gb[i]);
        double target_s = bench::sweepBestCompletion(job, catalog, 4);
        job.target = workload::PerformanceTarget::completionTime(
            target_s, job.total_work);

        double t_hadoop = runOne(job, [&](sim::Cluster &c,
                                          workload::WorkloadRegistry &r) {
            return std::make_unique<baselines::FrameworkSelfManager>(
                c, r, 66 + i);
        });

        ScaleUpConfig chosen;
        std::vector<std::string> used_platforms;
        double t_quasar = 0.0;
        {
            sim::Cluster cluster = sim::Cluster::localCluster();
            workload::WorkloadRegistry registry;
            core::QuasarConfig qcfg;
            qcfg.seed = 99u + i;
            core::QuasarManager mgr(cluster, registry, qcfg);
            mgr.seedOffline(seeds, 0.0);
            driver::ScenarioDriver drv(
                cluster, registry, mgr,
                driver::DriverConfig{.tick_s = 10.0});
            WorkloadId id = registry.add(job);
            drv.addArrival(id, 0.0);
            // Snoop the placement shortly after scheduling (Table 3).
            bool captured = false;
            drv.setTickHook([&](double) {
                if (captured)
                    return;
                auto hosting = cluster.serversHosting(id);
                if (hosting.empty())
                    return;
                const Workload &w = registry.get(id);
                const sim::TaskShare *share =
                    cluster.server(hosting.front()).share(id);
                chosen.cores = share->cores;
                chosen.memory_gb = share->memory_gb;
                chosen.knobs = w.active_knobs;
                for (ServerId s : hosting)
                    used_platforms.push_back(
                        cluster.server(s).platform().name);
                captured = true;
            });
            drv.run(400000.0);
            const Workload &w = registry.get(id);
            t_quasar =
                w.completed ? w.completion_time - w.arrival_time : -1.0;
        }

        double speedup = 100.0 * (t_hadoop - t_quasar) / t_hadoop;
        double gap = 100.0 * (t_quasar - target_s) / target_s;
        double needed = 100.0 * (t_hadoop - target_s) / t_hadoop;
        sum_speedup += speedup;
        sum_gap += std::fabs(gap);
        sum_needed += needed;
        std::printf("H%-4d %7.0fGB %12.0f %12.0f %9.1f%% %11.1f%%\n",
                    i + 1, dataset_gb[i], t_hadoop, t_quasar, speedup,
                    gap);

        if (i == 7) { // H8: the paper's Table 3 example
            h8 = job;
            h8_quasar_cfg = chosen;
            h8_platforms = used_platforms;
        }
    }

    std::printf("\naverage speedup: %.1f%% (paper: 29%%, up to 58%%)\n",
                sum_speedup / 10.0);
    std::printf("average |gap to target|: %.1f%% (paper: 5.8%%)\n",
                sum_gap / 10.0);
    std::printf("average improvement needed to reach target: %.1f%% "
                "(the paper's yellow dots)\n",
                sum_needed / 10.0);

    bench::section("Table 3: parameter settings for job H8");
    workload::FrameworkKnobs def = baselines::hadoopDefaultKnobs();
    std::printf("%-18s %-14s %-14s\n", "parameter", "Quasar", "Hadoop");
    std::printf("%-18s %-14d %-14d\n", "block size (MB)",
                h8_quasar_cfg.knobs.block_mb, def.block_mb);
    std::printf("%-18s %-14s %-14s\n", "compression",
                workload::compressionName(
                    h8_quasar_cfg.knobs.compression).c_str(),
                workload::compressionName(def.compression).c_str());
    std::printf("%-18s %-14.2f %-14.2f\n", "heapsize (GB)",
                h8_quasar_cfg.knobs.heap_gb, def.heap_gb);
    std::printf("%-18s %-14d %-14d\n", "replication",
                h8_quasar_cfg.knobs.replication, def.replication);
    std::printf("%-18s %-14d %-14d\n", "mappers per node",
                h8_quasar_cfg.knobs.mappers_per_node,
                def.mappers_per_node);
    std::string plats;
    for (const std::string &p : h8_platforms)
        plats += p + " ";
    std::printf("%-18s %-14s %-14s\n", "server types",
                plats.empty() ? "-" : plats.c_str(), "all types (LL)");
    std::printf("(H8 truth optimum: mappers/core ratio %.2f, heap "
                "%.2f GB, compression affinity %+.2f)\n",
                h8.truth.mapper_ratio_opt, h8.truth.heap_opt_gb,
                h8.truth.compression_affinity);
    return 0;
}
