/**
 * @file
 * Reproduces paper Figs. 6 and 7: a shared batch-processing cluster
 * running 16 Hadoop, 4 Storm, and 4 Spark jobs (5 s inter-arrival)
 * plus a stream of best-effort single-node tasks (2 s inter-arrival)
 * that soak up spare capacity. Quasar is compared against the
 * frameworks' own schedulers + least-loaded placement. Fig. 6 is the
 * per-job speedup from Quasar; Fig. 7 the cluster-utilization heatmap
 * of both managers.
 */

#include <cmath>

#include "baselines/framework_scheduler.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kHorizon = 18000.0; // 5 simulated hours
/** Best-effort arrivals continue through 3/4 of the run (paper: a
 *  continuous low-priority stream soaks up spare capacity). */
constexpr double kBeGap = 6.0;
constexpr double kBeUntil = kHorizon * 0.75;

struct ScenarioResult
{
    std::vector<double> completion; ///< per analytics job, seconds.
    std::vector<double> be_completion;
    double mean_util = 0.0;
    std::string heatmap;
};

/** Build the 24 analytics jobs + filler; ids returned in order. */
std::vector<Workload>
buildJobs(uint64_t seed, const std::vector<sim::Platform> &catalog)
{
    workload::WorkloadFactory factory{stats::Rng(seed)};
    std::vector<Workload> jobs;
    // Work is scaled so jobs run tens of minutes: adaptation-interval
    // effects must not dominate completion times.
    for (int i = 0; i < 16; ++i) {
        Workload j = factory.hadoopJob(
            "mahout-" + std::to_string(i + 1),
            factory.rng().uniform(5.0, 80.0));
        j.total_work *= 5.0;
        jobs.push_back(j);
    }
    for (int i = 0; i < 4; ++i) {
        Workload j = factory.stormJob(
            "storm-" + std::to_string(i + 1),
            factory.rng().uniform(4.0, 30.0));
        j.total_work *= 5.0;
        jobs.push_back(j);
    }
    for (int i = 0; i < 4; ++i) {
        Workload j = factory.sparkJob(
            "spark-" + std::to_string(i + 1),
            factory.rng().uniform(4.0, 40.0));
        j.total_work *= 5.0;
        jobs.push_back(j);
    }
    for (Workload &j : jobs) {
        // Targets: the best the parameter sweep achieves (as in the
        // paper); on a shared cluster managers get as close as they
        // can.
        double best = bench::sweepBestCompletion(j, catalog, 4);
        j.target = workload::PerformanceTarget::completionTime(
            best, j.total_work);
    }
    for (double t = kBeGap; t < kBeUntil; t += kBeGap) {
        Workload be = factory.bestEffortJob(
            "be-" + std::to_string(jobs.size()));
        be.total_work *= 3.0; // longer fillers: 5-30 min solo
        jobs.push_back(be);
    }
    return jobs;
}

template <typename MakeManager>
ScenarioResult
runScenario(uint64_t seed, MakeManager make)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    auto manager = make(cluster, registry);
    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 10.0,
                                                    .record_every = 3});
    std::vector<Workload> jobs = buildJobs(seed, cluster.catalog());
    std::vector<WorkloadId> analytics_ids, be_ids;
    for (size_t i = 0; i < jobs.size(); ++i) {
        WorkloadId id = registry.add(jobs[i]);
        if (i < 24) {
            analytics_ids.push_back(id);
            drv.addArrival(id, 5.0 * double(i + 1));
        } else {
            be_ids.push_back(id);
            drv.addArrival(id, kBeGap * double(i - 24 + 1));
        }
    }
    drv.run(kHorizon);

    ScenarioResult res;
    for (WorkloadId id : analytics_ids) {
        const Workload &w = registry.get(id);
        res.completion.push_back(
            w.completed ? w.completion_time - w.arrival_time : -1.0);
    }
    for (WorkloadId id : be_ids) {
        const Workload &w = registry.get(id);
        if (w.completed)
            res.be_completion.push_back(w.completion_time -
                                        w.arrival_time);
    }
    // Mean utilization while the arrival stream sustains load.
    double sum = 0.0;
    auto means = drv.cpuUsedGrid().windowMeans(600.0, kBeUntil);
    for (double m : means)
        sum += m;
    res.mean_util = sum / double(means.size());
    res.heatmap = drv.cpuUsedGrid().renderHeatmap(0.0, kHorizon, 72);
    return res;
}

} // namespace

int
main()
{
    bench::banner("Fig. 6: multi-framework batch cluster, per-job "
                  "speedup of Quasar over framework self-schedulers");

    const uint64_t seed = 606;
    workload::WorkloadFactory seed_factory{stats::Rng(4242)};
    auto offline = bench::standardSeeds(seed_factory, 4);

    ScenarioResult base = runScenario(seed, [&](auto &c, auto &r) {
        return std::make_unique<baselines::FrameworkSelfManager>(c, r,
                                                                 661);
    });
    ScenarioResult quasar = runScenario(seed, [&](auto &c, auto &r) {
        core::QuasarConfig cfg;
        cfg.seed = 909;
        auto m = std::make_unique<core::QuasarManager>(c, r, cfg);
        m->seedOffline(offline, 0.0);
        return m;
    });

    const char *labels[3] = {"mahout", "storm", "spark"};
    int counts[3] = {16, 4, 4};
    int idx = 0;
    double sum_speedup = 0.0;
    int finished = 0;
    for (int g = 0; g < 3; ++g) {
        bench::section(std::string(labels[g]) + " jobs");
        for (int i = 0; i < counts[g]; ++i, ++idx) {
            double tb = base.completion[idx];
            double tq = quasar.completion[idx];
            if (tb < 0 || tq < 0) {
                std::printf("%s-%-3d  (unfinished: baseline %.0f, "
                            "quasar %.0f)\n", labels[g], i + 1, tb, tq);
                continue;
            }
            double speedup = 100.0 * (tb - tq) / tb;
            sum_speedup += speedup;
            ++finished;
            std::printf("%s-%-3d  baseline %7.0fs  quasar %7.0fs  "
                        "speedup %6.1f%%\n",
                        labels[g], i + 1, tb, tq, speedup);
        }
    }
    std::printf("\naverage speedup: %.1f%% over %d finished jobs "
                "(paper: 27%% avg, within 5.3%% of targets)\n",
                finished ? sum_speedup / finished : 0.0, finished);

    bench::section("best-effort tasks");
    std::printf("baseline: %zu finished; quasar: %zu finished\n",
                base.be_completion.size(),
                quasar.be_completion.size());

    bench::banner("Fig. 7: cluster CPU utilization (heatmaps: rows = "
                  "servers, cols = time over 5h; ' '=idle, '@'=100%)");
    bench::section("Quasar");
    std::printf("%s", quasar.heatmap.c_str());
    std::printf("mean utilization (analytics phase): %.1f%% "
                "(paper: 62%%)\n", 100.0 * quasar.mean_util);
    bench::section("framework self-schedulers + least-loaded");
    std::printf("%s", base.heatmap.c_str());
    std::printf("mean utilization (analytics phase): %.1f%% "
                "(paper: 34%%)\n", 100.0 * base.mean_util);
    return 0;
}
