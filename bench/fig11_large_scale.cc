/**
 * @file
 * Reproduces paper Fig. 11: the large-scale cloud-provider scenario.
 * 1200 workloads of all types arrive with 1 s inter-arrival on a
 * 200-server EC2-style cluster, sized to use almost all cores at
 * steady state. Three managers are compared:
 *   - Quasar (joint allocation + assignment),
 *   - reservation + least-loaded (LL) assignment,
 *   - reservation + Paragon (classification-based assignment only).
 * Panels: (a) per-workload performance normalized to its target,
 * (b/c) cluster CPU utilization over time, (d) allocated vs used
 * resources, plus the paper's Sec. 6.5 overhead accounting.
 */

#include <array>
#include <cmath>

#include "baselines/paragon.hh"
#include "baselines/reservation_ll.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kHorizon = 28800.0; // 8 simulated hours
constexpr size_t kWorkloads = 1200;

/** The 1200-workload mix, sized for ~700 cores at steady state. */
std::vector<Workload>
buildMix(uint64_t seed, const std::vector<sim::Platform> &catalog)
{
    workload::WorkloadFactory factory{stats::Rng(seed)};
    auto &rng = factory.rng();
    std::vector<Workload> mix;
    static const char *families[] = {"spec-int", "spec-fp", "parsec",
                                     "splash2",  "minebench",
                                     "bioparallel", "specjbb", "mix"};
    for (size_t i = 0; i < kWorkloads; ++i) {
        double x = rng.uniform();
        std::string name = "w" + std::to_string(i);
        if (x < 0.86) {
            Workload w = factory.singleNodeJob(
                name, families[rng.uniformInt(0, 7)]);
            w.total_work *= 6.0; // ~20-45 min at the target rate
            mix.push_back(w);
        } else if (x < 0.94) {
            double gb = std::exp(rng.uniform(0.0, std::log(12.0)));
            Workload w;
            double y = rng.uniform();
            if (y < 0.6)
                w = factory.hadoopJob(name, gb);
            else if (y < 0.8)
                w = factory.stormJob(name, gb);
            else
                w = factory.sparkJob(name, gb);
            w.total_work *= 12.0; // hour-scale jobs, as in the paper
            w.target = workload::PerformanceTarget::completionTime(
                1.6 * bench::sweepBestCompletion(w, catalog, 4, 3),
                w.total_work);
            mix.push_back(w);
        } else if (x < 0.97) {
            double qps = rng.uniform(30.0, 90.0);
            mix.push_back(factory.webService(
                name, qps, 0.1,
                std::make_shared<tracegen::FluctuatingLoad>(
                    0.75 * qps, 0.25 * qps,
                    rng.uniform(3600.0, 10800.0))));
        } else if (x < 0.99) {
            double qps = rng.uniform(8e3, 2e4);
            mix.push_back(factory.memcachedService(
                name, qps, 200e-6, rng.uniform(6.0, 16.0),
                std::make_shared<tracegen::FluctuatingLoad>(
                    0.75 * qps, 0.25 * qps,
                    rng.uniform(3600.0, 14400.0))));
        } else {
            double qps = rng.uniform(8e2, 2e3);
            mix.push_back(factory.cassandraService(
                name, qps, 30e-3, rng.uniform(80.0, 200.0),
                std::make_shared<tracegen::FluctuatingLoad>(
                    0.75 * qps, 0.25 * qps,
                    rng.uniform(3600.0, 14400.0))));
        }
    }
    return mix;
}

struct SchemeResult
{
    std::vector<double> norm_perf; ///< per workload, 1.0 = on target.
    std::array<stats::Samples, 4> norm_by_type;
    double mean_util = 0.0;
    stats::TimeSeries used;
    stats::TimeSeries reserved;
    double mean_wait_s = 0.0;
    double overhead_pct = -1.0; ///< Quasar only.
};

template <typename MakeManager>
SchemeResult
runScheme(uint64_t seed, MakeManager make)
{
    sim::Cluster cluster = sim::Cluster::ec2Cluster();
    workload::WorkloadRegistry registry;
    auto manager = make(cluster, registry);
    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 15.0,
                                                    .record_every = 4});
    auto mix = buildMix(seed, cluster.catalog());
    std::vector<WorkloadId> ids;
    for (size_t i = 0; i < mix.size(); ++i) {
        WorkloadId id = registry.add(mix[i]);
        ids.push_back(id);
        drv.addArrival(id, 1.0 * double(i + 1));
    }
    drv.run(kHorizon);

    SchemeResult res;
    for (WorkloadId id : ids) {
        const Workload &w = registry.get(id);
        double norm;
        if (w.type == workload::WorkloadType::Analytics) {
            // Queue wait counts toward scheduling overhead (paper
            // Sec. 6.5), not performance: normalize against the time
            // the job actually held resources.
            double start = w.first_placed_at >= 0.0
                               ? w.first_placed_at
                               : w.arrival_time;
            if (w.completed)
                norm = w.target.completion_time_s /
                       (w.completion_time - start);
            else
                norm = w.work_done / w.total_work; // ran out of time
        } else if (workload::isLatencyCritical(w.type)) {
            norm = drv.meanNormalizedPerf(id);
        } else {
            norm = w.completed ? drv.meanNormalizedPerf(id)
                               : w.work_done / w.total_work;
        }
        res.norm_perf.push_back(std::min(norm, 1.25));
        res.norm_by_type[size_t(w.type)].add(std::min(norm, 1.25));
    }
    // Steady-state window: arrivals done, work still in flight.
    res.mean_util = 0.0;
    auto means =
        drv.cpuUsedGrid().windowMeans(1500.0, kHorizon * 0.6);
    for (double m : means)
        res.mean_util += m;
    res.mean_util /= double(means.size());
    res.used = drv.aggCpuUsed();
    res.reserved = drv.aggCpuReserved();
    return res;
}

void
printPanelA(const char *name, SchemeResult &r)
{
    std::sort(r.norm_perf.begin(), r.norm_perf.end());
    stats::Samples s;
    s.addAll(r.norm_perf);
    std::printf("%-22s avg %.2f | deciles:", name, s.mean());
    for (int d = 1; d <= 9; ++d)
        std::printf(" %.2f", s.percentile(10.0 * d));
    std::printf(" | >=90%% of target: %.0f%%\n",
                100.0 * (1.0 - s.fractionBelow(0.9)));
    std::printf("%22s by type: analytics %.2f, latency %.2f, "
                "stateful %.2f, single-node %.2f\n", "",
                r.norm_by_type[0].mean(), r.norm_by_type[1].mean(),
                r.norm_by_type[2].mean(), r.norm_by_type[3].mean());
}

void
printSeries(const char *name, const stats::TimeSeries &ts)
{
    std::printf("%-22s", name);
    for (int i = 1; i <= 12; ++i)
        std::printf(" %4.0f%%", 100.0 * ts.meanOver(
                                    (i - 1) * kHorizon / 12.0,
                                    i * kHorizon / 12.0));
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Fig. 11: 1200 workloads on a 200-server EC2 "
                  "cluster — Quasar vs reservation-based managers");

    workload::WorkloadFactory seed_factory{stats::Rng(1111)};
    auto offline = bench::standardSeeds(seed_factory, 4);
    const uint64_t seed = 11011;

    std::printf("\nrunning reservation+LL...\n");
    SchemeResult ll = runScheme(seed, [&](auto &c, auto &r) {
        return std::make_unique<baselines::ReservationLLManager>(c, r,
                                                                 311);
    });
    std::printf("running reservation+Paragon...\n");
    SchemeResult paragon = runScheme(seed, [&](auto &c, auto &r) {
        auto m = std::make_unique<baselines::ParagonManager>(c, r, 322);
        m->seedOffline(offline, 0.0);
        return m;
    });
    std::printf("running Quasar...\n");
    double overhead_pct = 0.0;
    SchemeResult quasar = runScheme(seed, [&](auto &c, auto &r) {
        core::QuasarConfig cfg;
        cfg.seed = 333;
        auto m = std::make_unique<core::QuasarManager>(c, r, cfg);
        m->seedOffline(offline, 0.0);
        return m;
    });
    (void)overhead_pct;

    bench::section("Fig. 11a: performance normalized to target "
                   "(sorted; capped at 1.25)");
    printPanelA("reservation+LL", ll);
    printPanelA("reservation+paragon", paragon);
    printPanelA("quasar", quasar);
    std::printf("(paper: Quasar ~98%% of target on average, Paragon "
                "83%%, LL 62%%)\n");

    bench::section("Fig. 11b/c: cluster CPU utilization over time "
                   "(12 windows)");
    printSeries("quasar (used)", quasar.used);
    printSeries("paragon (used)", paragon.used);
    printSeries("LL (used)", ll.used);
    std::printf("steady-state means: quasar %.0f%%, paragon %.0f%%, "
                "LL %.0f%%  (paper: 62%% vs 15%% for LL, a +47%% "
                "gap)\n",
                100.0 * quasar.mean_util, 100.0 * paragon.mean_util,
                100.0 * ll.mean_util);

    bench::section("Fig. 11d: allocated vs used (Quasar) and reserved "
                   "(LL)");
    printSeries("quasar allocated", quasar.reserved);
    printSeries("quasar used", quasar.used);
    printSeries("LL reserved", ll.reserved);
    std::printf("(paper: Quasar's allocated-used gap is ~10%%; "
                "reservations under LL exceed cluster capacity)\n");
    return 0;
}
