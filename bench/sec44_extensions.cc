/**
 * @file
 * Demonstrates the Sec. 4.4 extensions the paper lists as future work
 * and this implementation provides: per-workload cost targets,
 * priority-based preemption, and fault-zone-aware assignment.
 */

#include <cmath>
#include <set>

#include "bench/common.hh"
#include "core/classifier.hh"
#include "core/predictor.hh"
#include "core/scheduler.hh"
#include "workload/queueing.hh"

using namespace quasar;
using workload::Workload;

int
main()
{
    bench::banner("Sec. 4.4 extensions: cost targets, priorities, "
                  "fault zones");

    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    profiling::Profiler profiler(cluster.catalog(), {});
    core::Classifier clf(profiler, {}, 44);
    workload::WorkloadFactory factory{stats::Rng(444)};
    clf.seedOffline(bench::standardSeeds(factory, 4), 0.0);
    stats::Rng rng(445);

    auto classify = [&](Workload w) {
        WorkloadId id = registry.add(std::move(w));
        auto data = profiler.profile(registry.get(id), 0.0, rng);
        return std::make_pair(id, clf.classify(registry.get(id), data));
    };

    bench::section("cost targets: performance vs spending cap for one "
                   "Hadoop job");
    std::printf("%12s %10s %10s %8s\n", "cap ($/h)", "perf", "cores",
                "nodes");
    auto [cost_id, cost_est] =
        classify(factory.hadoopJob("job", 60.0));
    for (double cap : {0.5, 1.0, 2.0, 4.0, 8.0, 0.0}) {
        registry.get(cost_id).cost_cap_per_hour = cap;
        const auto &est = cost_est;
        core::GreedyScheduler sched(cluster, {}, &registry);
        auto alloc = sched.allocate(registry.get(cost_id), est, 1e12,
                                    nullptr, false);
        if (cap > 0.0)
            std::printf("%12.1f %10.1f %10d %8zu\n", cap,
                        alloc->predicted_perf, alloc->totalCores(),
                        alloc->nodes.size());
        else
            std::printf("%12s %10.1f %10d %8zu\n", "unlimited",
                        alloc->predicted_perf, alloc->totalCores(),
                        alloc->nodes.size());
    }
    std::printf("=> more budget buys more performance, monotonically; "
                "the scheduler never exceeds the cap.\n");

    bench::section("priorities: preemption order under pressure");
    {
        // Fill the best servers with priority-1 residents.
        for (ServerId sid : cluster.serversOfPlatform("J")) {
            Workload filler = factory.singleNodeJob("low", "specjbb");
            filler.priority = 1;
            filler.total_work = 1e18;
            WorkloadId fid = registry.add(filler);
            sim::Server &srv = cluster.server(sid);
            sim::TaskShare share;
            share.workload = fid;
            share.cores = srv.platform().cores;
            share.memory_gb = srv.platform().memory_gb;
            srv.place(share);
        }
        Workload vip = factory.hadoopJob("vip", 40.0);
        vip.priority = 3;
        auto [id, est] = classify(std::move(vip));
        core::GreedyScheduler sched(cluster, {}, &registry);
        auto alloc = sched.allocate(registry.get(id), est,
                                    0.5 * est.scale_up_perf[0],
                                    nullptr, true);
        std::printf("priority-3 job displaced %zu priority-1 tasks to "
                    "claim %zu high-end nodes\n",
                    alloc->evictions.size(), alloc->nodes.size());
        for (const auto &[sid, victim] : alloc->evictions)
            cluster.server(sid).remove(victim);
        for (const auto &n : alloc->nodes) {
            sim::TaskShare share;
            share.workload = id;
            share.cores = n.cores;
            share.memory_gb = n.memory_gb;
            cluster.server(n.server).place(share);
        }

        Workload peer = factory.hadoopJob("peer", 40.0);
        peer.priority = 3; // equal: must NOT displace the vip job
        auto [id2, est2] = classify(std::move(peer));
        auto alloc2 = sched.allocate(registry.get(id2), est2,
                                     0.5 * est2.scale_up_perf[0],
                                     nullptr, true);
        bool touched_vip = false;
        if (alloc2)
            for (const auto &[sid, victim] : alloc2->evictions)
                touched_vip = touched_vip || victim == id;
        std::printf("equal-priority follow-up evicted the running job: "
                    "%s (expected: no)\n", touched_vip ? "yes" : "no");
        cluster.removeEverywhere(id);
    }

    bench::section("fault zones: node spread of an 8-node allocation");
    {
        Workload j = factory.hadoopJob("spread", 80.0);
        auto [id, est] = classify(std::move(j));
        double best = 0.0;
        for (double v : est.scale_up_perf)
            best = std::max(best, v);
        for (bool spread : {false, true}) {
            core::SchedulerConfig cfg;
            cfg.spread_fault_zones = spread;
            core::GreedyScheduler sched(cluster, cfg, &registry);
            auto alloc = sched.allocate(registry.get(id), est,
                                        5.0 * best, nullptr, false);
            std::set<int> zones;
            for (const auto &n : alloc->nodes)
                zones.insert(cluster.server(n.server).faultZone());
            std::printf("spread_fault_zones=%-5s -> %zu nodes across "
                        "%zu of %d zones (perf %.1f)\n",
                        spread ? "true" : "false", alloc->nodes.size(),
                        zones.size(), cluster.numFaultZones(),
                        alloc->predicted_perf);
        }
        std::printf("=> spreading survives a zone failure at a small "
                    "(or zero) performance cost.\n");
    }

    bench::section("resource partitioning: shielding a sensitive job "
                   "from a noisy neighbour");
    {
        // A sensitive resident and a noisy co-runner on one server.
        Workload sensitive = factory.singleNodeJob("victim", "specjbb");
        sensitive.truth.sensitivity.threshold.fill(0.05);
        sensitive.truth.sensitivity.slope.fill(2.0);
        WorkloadId vid = registry.add(sensitive);
        Workload noisy = factory.singleNodeJob("noisy", "parsec");
        noisy.truth.sensitivity.caused_per_core.fill(0.2);
        WorkloadId nid = registry.add(noisy);

        sim::Server &srv =
            cluster.server(cluster.serversOfPlatform("I")[3]);
        sim::TaskShare a;
        a.workload = vid;
        a.cores = 8;
        a.memory_gb = 8.0;
        a.caused = registry.get(vid).causedPressure(0.0, 8);
        srv.place(a);
        sim::TaskShare b;
        b.workload = nid;
        b.cores = 8;
        b.memory_gb = 8.0;
        b.caused = registry.get(nid).causedPressure(0.0, 8);
        srv.place(b);

        workload::PerfOracle oracle(cluster, registry);
        double contended =
            oracle.currentRate(registry.get(vid), 0.0);
        for (size_t i = 0; i < interference::kNumSources; ++i)
            srv.setIsolation(vid, interference::sourceAt(i), true);
        double partitioned =
            oracle.currentRate(registry.get(vid), 0.0);
        srv.remove(nid);
        for (size_t i = 0; i < interference::kNumSources; ++i)
            srv.setIsolation(vid, interference::sourceAt(i), false);
        double alone = oracle.currentRate(registry.get(vid), 0.0);
        std::printf("victim rate: alone %.2f | contended %.2f "
                    "(-%.0f%%) | partitioned %.2f (-%.0f%%)\n",
                    alone, contended,
                    100.0 * (1.0 - contended / alone), partitioned,
                    100.0 * (1.0 - partitioned / alone));
        std::printf("=> partitioning recovers most of the interference "
                    "loss for a fixed ~5%%-per-resource capacity "
                    "tax.\n");
        srv.remove(vid);
    }

    bench::section("load prediction: capacity ahead of a ramp");
    {
        core::LoadPredictor pred;
        auto ramp = tracegen::PiecewiseLoad(
            {{0.0, 100.0}, {600.0, 100.0}, {1200.0, 700.0},
             {2400.0, 700.0}});
        std::printf("%8s %10s %13s %13s\n", "t (s)", "actual",
                    "actual+120s", "forecast+120s");
        for (double t = 0.0; t <= 1500.0; t += 30.0) {
            pred.observe(t, ramp.qpsAt(t));
            if (std::fmod(t, 150.0) < 1.0)
                std::printf("%8.0f %10.0f %13.0f %13.0f\n", t,
                            ramp.qpsAt(t), ramp.qpsAt(t + 120.0),
                            pred.predict(t + 120.0));
        }
        std::printf("=> during the ramp the forecast leads the actual "
                    "load, so Quasar provisions before the monitor "
                    "would have noticed a miss.\n");
    }
    return 0;
}
