/**
 * @file
 * NUMA topology bench (DESIGN.md §13): does cache-aware socket
 * selection buy QoS on multi-socket machines?
 *
 * Two scenarios on a cluster of 2-socket servers:
 *
 *  - thrash: a cache-thrashing co-runner occupies socket 0 of every
 *    machine (persistent injected LLC/memory-bandwidth/prefetch
 *    pressure — the classic streaming antagonist), plus a stream of
 *    best-effort LLC-noisy fillers. Latency-critical memcached
 *    services arrive on top. Socket-aware selection homes them on the
 *    quiet socket; the topology-blind rule (fewest homed cores — the
 *    pre-topology behaviour) walks them straight into the thrashed
 *    socket, which injected pressure makes look empty.
 *
 *  - bandwidth: no injection; bandwidth-bound Spark-style analytics
 *    (boosted MemoryBw caused pressure) share the machines with
 *    latency-critical webservices, so the pressure asymmetry between
 *    sockets emerges from placement itself rather than a fixed
 *    antagonist.
 *
 * Per leg the bench reports the services' QoS-violation rate, the
 * fraction of latency-critical cores homed on socket 0 (the mechanism
 * behind the headline number), and the per-tick placement hash with
 * the share's home socket folded in.
 *
 * Gates (exit 1):
 *  - replay: the thrash aware leg re-run under the cached scheduler
 *    index and re-replayed under dirty must reproduce the placement
 *    hash bit-identically;
 *  - QoS: socket-aware must violate strictly less than topology-blind
 *    on the thrash scenario;
 *  - baseline (with --baseline): the aware thrash leg must stay
 *    within --max-regression (absolute) of the committed
 *    BENCH_topology.json's qos_violation_rate.
 *
 * `--smoke` is the CI variant: the thrash scenario only. The full run
 * adds the bandwidth scenario legs.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;

namespace
{

constexpr double kHorizon = 600.0;

/** Cluster of the 2-socket preset (16 cores, 8 per socket). */
sim::Cluster
numaCluster(int servers)
{
    auto catalog = sim::numaPlatforms();
    std::vector<int> counts(catalog.size(), 0);
    for (size_t i = 0; i < catalog.size(); ++i)
        if (catalog[i].topology.numSockets() == 2)
            counts[i] = servers;
    return sim::Cluster(catalog, counts);
}

/** The streaming antagonist: LLC + memory bandwidth + prefetchers. */
interference::IVector
thrasherPressure()
{
    interference::IVector v{};
    v[size_t(interference::Source::MemoryBw)] = 0.55;
    v[size_t(interference::Source::LLCache)] = 0.65;
    v[size_t(interference::Source::L2Cache)] = 0.30;
    v[size_t(interference::Source::Prefetch)] = 0.45;
    return v;
}

struct LegMetrics
{
    size_t services = 0;
    double qos_violation_rate = 0.0;
    /** Mean fraction of latency-critical cores homed on socket 0. */
    double lc_socket0_core_frac = 0.0;
    size_t be_completed = 0;
    /** Best-effort cores resident at the final sampled tick. */
    int be_cores_final = 0;
    uint64_t placement_hash = 0;
};

/** Fold the cluster's full allocation state into a running FNV-1a. */
void
hashClusterState(const sim::Cluster &cluster, uint64_t &h)
{
    auto fold = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ULL;
    };
    for (size_t s = 0; s < cluster.size(); ++s) {
        const sim::Server &srv = cluster.server(ServerId(s));
        fold(uint64_t(s) << 32 | uint64_t(srv.coresAllocated()));
        for (const sim::TaskShare &t : srv.tasks()) {
            // Socket folded into the high bits of the workload
            // word: ids stay far below 2^48, and socket 0 leaves the
            // pre-topology hash untouched (flat bit-identity).
            fold(uint64_t(t.workload) | uint64_t(t.socket) << 48);
            fold(uint64_t(t.cores));
        }
    }
}

LegMetrics
runThrashLeg(int servers, bool aware, bool dirty)
{
    sim::Cluster cluster = numaCluster(servers);
    // The co-runner: socket 0 of every machine is being thrashed for
    // the whole run. Injected pressure is invisible to the blind
    // homing rule (it owns no cores) but fully visible to the
    // interference model — exactly the trap topology awareness exists
    // to avoid.
    for (size_t s = 0; s < cluster.size(); ++s)
        cluster.server(ServerId(s))
            .injectPressureAt(0, thrasherPressure());

    workload::WorkloadRegistry registry;
    core::QuasarConfig qcfg;
    qcfg.scheduler.dirty_set = dirty;
    qcfg.scheduler.socket_aware = aware;
    core::QuasarManager mgr(cluster, registry, qcfg);
    workload::WorkloadFactory seeder{stats::Rng(4242)};
    mgr.seedOffline(seeder, 16);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 10.0, .record_every = 2});

    workload::WorkloadFactory factory{stats::Rng(20260813)};
    std::vector<WorkloadId> services;
    for (int i = 0; i < servers; ++i) {
        double q = factory.rng().uniform(4e4, 7e4);
        workload::Workload mc = factory.memcachedService(
            "mc-" + std::to_string(i), q, 2e-4, 8.0,
            std::make_shared<tracegen::FlatLoad>(0.9 * q));
        // Cache-resident working set: the scenario contends on the
        // LLC and memory bandwidth, not on DRAM capacity (the 48 GB
        // machines would otherwise fill on memory with idle cores).
        mc.truth.mem_demand_gb = factory.rng().uniform(4.0, 8.0);
        WorkloadId id = registry.add(mc);
        services.push_back(id);
        drv.addArrival(id, 5.0 * double(i + 1));
    }
    std::vector<WorkloadId> fillers;
    for (double t = 8.0; t < 0.7 * kHorizon; t += 12.0) {
        workload::Workload be = factory.bestEffortJob("be");
        // Short enough to finish inside the horizon.
        be.total_work *= 0.3;
        // LLC-noisy but insensitive fillers: they cause cache traffic
        // wherever they land yet tolerate anything, so both homing
        // rules treat them alike and the legs differ only in where
        // the latency-critical work goes.
        auto &sens = be.truth.sensitivity;
        sens.caused_per_core[size_t(interference::Source::LLCache)] +=
            0.06;
        sens.caused_per_core[size_t(interference::Source::MemoryBw)] +=
            0.04;
        for (size_t i = 0; i < interference::kNumSources; ++i)
            sens.threshold[i] = std::max(sens.threshold[i], 0.9);
        // Modest rate target: fillers should squeeze into whatever
        // the services leave over instead of queueing forever.
        be.target.rate *= 0.4;
        WorkloadId id = registry.add(be);
        fillers.push_back(id);
        drv.addArrival(id, t);
    }

    LegMetrics m;
    m.services = services.size();
    uint64_t hash = 0xCBF29CE484222325ULL;
    double frac_sum = 0.0;
    size_t frac_n = 0;
    drv.setTickHook([&](double) {
        hashClusterState(cluster, hash);
        int lc_cores = 0, lc_socket0 = 0, be_cores = 0;
        for (size_t s = 0; s < cluster.size(); ++s) {
            for (const sim::TaskShare &t :
                 cluster.server(ServerId(s)).tasks()) {
                if (t.best_effort) {
                    be_cores += t.cores;
                    continue;
                }
                lc_cores += t.cores;
                if (t.socket == 0)
                    lc_socket0 += t.cores;
            }
        }
        m.be_cores_final = be_cores;
        if (lc_cores > 0) {
            frac_sum += double(lc_socket0) / double(lc_cores);
            ++frac_n;
        }
    });

    drv.run(kHorizon);

    double qos_sum = 0.0;
    size_t qos_n = 0;
    for (WorkloadId id : services) {
        const driver::ServiceTrace *trace = drv.serviceTrace(id);
        if (!trace || trace->qos_fraction.size() == 0)
            continue;
        qos_sum += trace->qos_fraction.mean();
        ++qos_n;
    }
    m.qos_violation_rate = qos_n ? 1.0 - qos_sum / double(qos_n) : 0.0;
    m.lc_socket0_core_frac =
        frac_n ? frac_sum / double(frac_n) : 0.0;
    for (WorkloadId id : fillers)
        if (registry.get(id).completed)
            ++m.be_completed;
    m.placement_hash = hash;
    return m;
}

LegMetrics
runBandwidthLeg(int servers, bool aware, bool dirty)
{
    sim::Cluster cluster = numaCluster(servers);
    workload::WorkloadRegistry registry;
    core::QuasarConfig qcfg;
    qcfg.scheduler.dirty_set = dirty;
    qcfg.scheduler.socket_aware = aware;
    core::QuasarManager mgr(cluster, registry, qcfg);
    workload::WorkloadFactory seeder{stats::Rng(4242)};
    mgr.seedOffline(seeder, 16);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 10.0, .record_every = 2});

    workload::WorkloadFactory factory{stats::Rng(20260814)};
    // Heavy-small hogs first: one bandwidth-bound Spark-style job per
    // machine, two cores each but streaming through memory an order
    // of magnitude harder per core than anything else here. Pressure
    // and core count are DECOUPLED — the precondition for the blind
    // homing rule to go wrong. Their own MemoryBw sensitivity spreads
    // them one per machine, homed socket 0 by the tie rule.
    for (int i = 0; i < servers; ++i) {
        workload::Workload job = factory.sparkJob(
            "bw-" + std::to_string(i),
            factory.rng().uniform(8.0, 14.0));
        auto &sens = job.truth.sensitivity;
        sens.caused_per_core[size_t(
            interference::Source::MemoryBw)] += 0.30;
        sens.caused_per_core[size_t(
            interference::Source::LLCache)] += 0.10;
        job.truth.parallelism = 2.0;
        // Long-lived: resident for the whole run.
        job.total_work *= 8.0;
        job.target = workload::WorkloadFactory::defaultAnalyticsTarget(
            job, cluster.catalog()[1], 1, 8.0);
        drv.addArrival(registry.add(job), 2.0 + 10.0 * double(i));
    }
    // Light-big ballast second, one per machine: compute-bound,
    // several cores, causing almost nothing. Both homing rules put it
    // opposite the hog, inverting the core-count signal: the quiet
    // socket now HOLDS MORE CORES than the bandwidth-thrashed one.
    for (int i = 0; i < servers; ++i) {
        workload::Workload b = factory.singleNodeJob("ballast",
                                                     "specjbb");
        auto &sens = b.truth.sensitivity;
        for (size_t j = 0; j < interference::kNumSources; ++j)
            sens.caused_per_core[j] *= 0.25;
        b.target.rate *= 2.0;
        b.total_work *= 8.0;
        drv.addArrival(registry.add(b), 100.0 + 8.0 * double(i));
    }
    // Latency-critical services last, into machines where the
    // fewest-cores rule points straight at the bandwidth hogs.
    std::vector<WorkloadId> services;
    for (int i = 0; i < 6; ++i) {
        double q = factory.rng().uniform(1.5e4, 3e4);
        workload::Workload mc = factory.memcachedService(
            "lc-" + std::to_string(i), q, 2e-4, 8.0,
            std::make_shared<tracegen::FlatLoad>(0.9 * q));
        mc.truth.mem_demand_gb = factory.rng().uniform(4.0, 8.0);
        WorkloadId id = registry.add(mc);
        services.push_back(id);
        drv.addArrival(id, 0.4 * kHorizon + 8.0 * double(i + 1));
    }

    LegMetrics m;
    m.services = services.size();
    uint64_t hash = 0xCBF29CE484222325ULL;
    double frac_sum = 0.0;
    size_t frac_n = 0;
    drv.setTickHook([&](double) {
        hashClusterState(cluster, hash);
        int lc_cores = 0, lc_socket0 = 0;
        for (size_t s = 0; s < cluster.size(); ++s) {
            for (const sim::TaskShare &t :
                 cluster.server(ServerId(s)).tasks()) {
                bool lc = false;
                for (WorkloadId id : services)
                    lc = lc || id == t.workload;
                if (!lc)
                    continue;
                lc_cores += t.cores;
                if (t.socket == 0)
                    lc_socket0 += t.cores;
            }
        }
        if (lc_cores > 0) {
            frac_sum += double(lc_socket0) / double(lc_cores);
            ++frac_n;
        }
    });

    drv.run(kHorizon);

    double qos_sum = 0.0;
    size_t qos_n = 0;
    for (WorkloadId id : services) {
        const driver::ServiceTrace *trace = drv.serviceTrace(id);
        if (!trace || trace->qos_fraction.size() == 0)
            continue;
        qos_sum += trace->qos_fraction.mean();
        ++qos_n;
    }
    m.qos_violation_rate = qos_n ? 1.0 - qos_sum / double(qos_n) : 0.0;
    m.lc_socket0_core_frac =
        frac_n ? frac_sum / double(frac_n) : 0.0;
    m.placement_hash = hash;
    return m;
}

/** qos_violation_rate of the named leg in a committed baseline. */
double
baselineQos(const std::string &path, const char *leg)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return std::nan("");
    char line[2048];
    char want[64];
    std::snprintf(want, sizeof(want), "\"leg\": \"%s\"", leg);
    double qos = std::nan("");
    while (std::fgets(line, sizeof(line), f)) {
        if (!std::strstr(line, want))
            continue;
        const char *key =
            std::strstr(line, "\"qos_violation_rate\":");
        if (key)
            qos = std::atof(key +
                            std::strlen("\"qos_violation_rate\":"));
        break;
    }
    std::fclose(f);
    return qos;
}

void
printLeg(const char *name, const LegMetrics &m)
{
    std::printf("  %-18s: qos-viol %.3f  lc-on-socket0 %.3f  "
                "be-done %zu (cores %d)  place %016llx\n",
                name, m.qos_violation_rate, m.lc_socket0_core_frac,
                m.be_completed, m.be_cores_final,
                (unsigned long long)m.placement_hash);
}

int
runTopologyBench(bool smoke, const std::string &out_path,
                 const std::string &baseline_path,
                 double max_regression)
{
    const int servers = 8;

    bench::banner(
        smoke ? "NUMA topology (smoke): cache-thrashed socket, "
                "aware vs blind homing"
              : "NUMA topology: cache-thrash + bandwidth scenarios, "
                "aware vs blind homing");

    struct Leg
    {
        const char *name;
        const char *scenario;
        bool aware;
        bool dirty;
        LegMetrics m;
    };
    std::vector<Leg> legs = {
        {"thrash-aware", "thrash", true, true, {}},
        {"thrash-blind", "thrash", false, true, {}},
        {"thrash-aware-cached", "thrash", true, false, {}},
        {"thrash-aware-replay", "thrash", true, true, {}},
    };
    if (!smoke) {
        legs.push_back({"bw-aware", "bandwidth", true, true, {}});
        legs.push_back({"bw-blind", "bandwidth", false, true, {}});
    }

    for (Leg &leg : legs) {
        std::printf("  running %s...\n", leg.name);
        std::fflush(stdout);
        leg.m = std::strcmp(leg.scenario, "thrash") == 0
                    ? runThrashLeg(servers, leg.aware, leg.dirty)
                    : runBandwidthLeg(servers, leg.aware, leg.dirty);
    }

    // Replay gate: the aware thrash decision stream must reproduce
    // bit-identically across the scheduler index mode (dirty vs
    // cached) and across a full re-run.
    const LegMetrics &aware = legs[0].m;
    bool replay_ok = true;
    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"name\": \"topology\",\n  \"smoke\": %s,\n"
                 "  \"servers\": %d,\n  \"horizon_s\": %.0f,\n"
                 "  \"legs\": [\n",
                 smoke ? "true" : "false", servers, kHorizon);
    for (size_t i = 0; i < legs.size(); ++i) {
        const Leg &leg = legs[i];
        bool identical = true;
        if (leg.aware && std::strcmp(leg.scenario, "thrash") == 0 &&
            std::strcmp(leg.name, "thrash-aware") != 0)
            identical = leg.m.placement_hash == aware.placement_hash;
        replay_ok = replay_ok && identical;
        printLeg(leg.name, leg.m);
        if (!identical)
            std::printf("        ^^ DIVERGED from thrash-aware\n");
        std::fprintf(
            out,
            "    {\"leg\": \"%s\", \"scenario\": \"%s\", "
            "\"servers\": %d, \"aware\": %s, \"mode\": \"%s\", "
            "\"services\": %zu, \"qos_violation_rate\": %.4f, "
            "\"lc_socket0_core_frac\": %.4f, \"be_completed\": %zu, "
            "\"placement_hash\": \"%016llx\", "
            "\"identical\": %s}%s\n",
            leg.name, leg.scenario, servers,
            leg.aware ? "true" : "false",
            leg.dirty ? "dirty" : "cached", leg.m.services,
            leg.m.qos_violation_rate, leg.m.lc_socket0_core_frac,
            leg.m.be_completed,
            (unsigned long long)leg.m.placement_hash,
            identical ? "true" : "false",
            i + 1 == legs.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    int rc = 0;
    if (!replay_ok) {
        std::fprintf(stderr,
                     "FAIL: topology decisions diverged across "
                     "scheduler modes / re-replay\n");
        rc = 1;
    }
    const LegMetrics &blind = legs[1].m;
    if (!(aware.qos_violation_rate < blind.qos_violation_rate)) {
        std::fprintf(stderr,
                     "FAIL: socket-aware homing does not improve QoS "
                     "on the thrash scenario (%.4f vs blind %.4f)\n",
                     aware.qos_violation_rate,
                     blind.qos_violation_rate);
        rc = 1;
    } else {
        std::printf(
            "qos gate ok: thrash violation aware %.4f < blind %.4f "
            "(lc cores on the thrashed socket: %.3f vs %.3f)\n",
            aware.qos_violation_rate, blind.qos_violation_rate,
            aware.lc_socket0_core_frac, blind.lc_socket0_core_frac);
    }
    if (!baseline_path.empty()) {
        double base = baselineQos(baseline_path, "thrash-aware");
        if (std::isnan(base)) {
            std::printf("no usable baseline at %s; skipping the "
                        "regression gate\n",
                        baseline_path.c_str());
        } else if (aware.qos_violation_rate > base + max_regression) {
            std::fprintf(stderr,
                         "FAIL: thrash-aware qos violation %.4f "
                         "regressed more than %.2f above the "
                         "committed baseline %.4f\n",
                         aware.qos_violation_rate, max_regression,
                         base);
            rc = 1;
        } else {
            std::printf("baseline gate ok: %.4f vs committed %.4f "
                        "(+%.2f allowed)\n",
                        aware.qos_violation_rate, base,
                        max_regression);
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_topology.json";
    std::string baseline_path;
    double max_regression = 0.05;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = arg.substr(11);
        else if (arg.rfind("--max-regression=", 0) == 0)
            max_regression = std::atof(arg.c_str() + 17);
    }
    return runTopologyBench(smoke, out_path, baseline_path,
                            max_regression);
}
