/**
 * @file
 * Reproduces paper Fig. 3: sensitivity of classification accuracy to
 * the number of observed entries per input-matrix row (panels a-d:
 * 90th-percentile error per classification type for Hadoop, memcached,
 * and single-node workloads), and panel e: profiling + decision
 * overhead versus density, with the 4-parallel vs exhaustive
 * decision-time comparison.
 */

#include <chrono>
#include <cmath>

#include "bench/common.hh"
#include "core/classifier.hh"
#include "stats/summary.hh"

using namespace quasar;
using workload::Workload;

namespace
{

struct P90s
{
    double scale_up = 0.0;
    double scale_out = 0.0;
    double het = 0.0;
    double interference = 0.0;
    double profiling_s = 0.0;
    double decision_s = 0.0;
    double decision_exh_s = 0.0;
};

double
relErr(double est, double truth)
{
    return std::fabs(est - truth) / std::max(std::fabs(truth), 1e-9);
}

/** Evaluate one workload family at one profiling density. */
P90s
evalFamily(const std::string &family, size_t density, uint64_t seed)
{
    auto catalog = sim::localPlatforms();
    profiling::ProfilerConfig pcfg;
    pcfg.samples_per_classification = density;
    profiling::Profiler profiler(catalog, pcfg);
    profiling::ProfilerConfig nf;
    nf.noise_sigma = 0.0;
    profiling::Profiler truth_prof(catalog, nf);

    core::ClassifierConfig cfg;
    core::Classifier clf(profiler, cfg, seed);
    core::ClassifierConfig cfg_exh = cfg;
    cfg_exh.exhaustive = true;
    core::Classifier clf_exh(profiler, cfg_exh, seed);

    workload::WorkloadFactory factory{stats::Rng(seed)};
    auto seeds = bench::standardSeeds(factory, 4);
    clf.seedOffline(seeds, 0.0);
    clf_exh.seedOffline(seeds, 0.0);

    stats::Rng rng(seed ^ 0xF00D);
    for (int i = 0; i < 80; ++i) {
        Workload w = factory.randomWorkload("warm");
        auto d = profiler.profile(w, 0.0, rng);
        clf.classify(w, d);
    }

    stats::Samples su, so, het, ifr;
    P90s out;
    const int count = 12;
    for (int i = 0; i < count; ++i) {
        Workload w;
        if (family == "hadoop") {
            w = factory.hadoopJob("h", factory.rng().uniform(1, 300));
        } else if (family == "memcached") {
            double q = factory.rng().uniform(5e4, 4e5);
            w = factory.memcachedService(
                "m", q, 200e-6, 60.0,
                std::make_shared<tracegen::FlatLoad>(q));
        } else {
            static const char *fams[] = {"spec-int", "parsec",
                                         "minebench", "specjbb"};
            w = factory.singleNodeJob("s", fams[i % 4]);
        }

        auto data = profiler.profile(w, 0.0, rng);
        out.profiling_s += data.profiling_seconds;
        auto t0 = std::chrono::steady_clock::now();
        auto est = clf.classify(w, data);
        auto t1 = std::chrono::steady_clock::now();
        auto est_exh = clf_exh.classify(w, data);
        auto t2 = std::chrono::steady_clock::now();
        out.decision_s += std::chrono::duration<double>(t1 - t0).count();
        out.decision_exh_s +=
            std::chrono::duration<double>(t2 - t1).count();

        stats::Rng z(1);
        auto su_true = truth_prof.denseScaleUpRow(w, 0.0, z);
        for (size_t c = 0; c < su_true.size(); ++c)
            su.add(relErr(est.scale_up_perf[c], su_true[c]));
        auto ref = profiling::Profiler::referenceConfig(
            catalog[profiler.scaleUpPlatform()], w.type);
        if (workload::isDistributed(w.type)) {
            auto so_true = truth_prof.denseScaleOutRow(w, 0.0, ref, z);
            for (size_t c = 0; c < so_true.size(); ++c)
                so.add(relErr(est.scale_out_speedup[c],
                              so_true[c] / so_true[0]));
        }
        auto het_true = truth_prof.denseHeterogeneityRow(w, 0.0, z);
        double hn = het_true[profiler.scaleUpPlatform()];
        for (size_t c = 0; c < het_true.size(); ++c)
            het.add(relErr(est.platform_factor[c], het_true[c] / hn));
        auto tol_true = truth_prof.denseInterferenceRow(w, 0.0, ref);
        for (size_t c = 0; c < tol_true.size(); ++c)
            ifr.add(std::fabs(est.tolerated[c] - tol_true[c]));
    }
    out.scale_up = su.percentile(90);
    out.scale_out = so.percentile(90);
    out.het = het.percentile(90);
    out.interference = ifr.percentile(90);
    out.profiling_s /= count;
    out.decision_s /= count;
    out.decision_exh_s /= count;
    return out;
}

} // namespace

int
main()
{
    bench::banner("Fig. 3: classification accuracy & overhead vs "
                  "input-matrix density");

    static const char *families[] = {"hadoop", "memcached",
                                     "single-node"};
    static const size_t densities[] = {1, 2, 3, 4, 6};

    for (const char *fam : families) {
        bench::section(std::string(fam) +
                       ": 90th-pct error vs entries/row");
        std::printf("%8s %10s %10s %10s %12s\n", "entries", "scale-up",
                    "scale-out", "heterog.", "interference");
        for (size_t d : densities) {
            P90s r = evalFamily(fam, d, 1000 + d);
            if (std::string(fam) == "single-node")
                std::printf("%8zu %9.1f%% %10s %9.1f%% %11.3f\n", d,
                            100 * r.scale_up, "-", 100 * r.het,
                            r.interference);
            else
                std::printf("%8zu %9.1f%% %9.1f%% %9.1f%% %11.3f\n", d,
                            100 * r.scale_up, 100 * r.scale_out,
                            100 * r.het, r.interference);
        }
    }

    bench::section("Fig. 3e: overhead vs density (hadoop family)");
    std::printf("%8s %15s %18s %18s\n", "entries", "profiling (s)",
                "decision 4p (ms)", "decision exh (ms)");
    for (size_t d : densities) {
        P90s r = evalFamily("hadoop", d, 2000 + d);
        std::printf("%8zu %15.1f %18.2f %18.2f\n", d, r.profiling_s,
                    1e3 * r.decision_s, 1e3 * r.decision_exh_s);
    }

    std::printf("\npaper reference: one entry/row is inaccurate; two or "
                "more entries cut errors sharply with diminishing "
                "returns past 4-5; profiling cost grows with density "
                "while exhaustive decisions cost ~two orders more than "
                "the four parallel classifications.\n");
    return 0;
}
