/**
 * @file
 * Reproduces paper Figs. 9 and 10: two stateful latency-critical
 * services — a memcached deployment (1 TB of state, diurnal load up to
 * 2.4M QPS, 200 us p99 QoS) and a Cassandra deployment (4 TB, up to
 * 60K QPS, 30 ms QoS) — run for 24 hours on the 40-server cluster,
 * with spare capacity running best-effort tasks. Quasar is compared
 * against the auto-scaling manager. Fig. 9 reports throughput tracking
 * and latency QoS; Fig. 10 the CPU/memory/storage usage split across
 * the day.
 */

#include <cmath>

#include "baselines/autoscale.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"
#include "stats/histogram.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kDay = 86400.0;

struct Result
{
    stats::TimeSeries mc_offered, mc_served;
    stats::TimeSeries cas_offered, cas_served;
    double mc_qos = 0.0, cas_qos = 0.0;
    double mc_track = 0.0, cas_track = 0.0;
    std::vector<double> mc_latency_ms, cas_latency_ms;
    /** Fig. 10: per-6h-window resource fractions by category:
     *  [window][0=memcached,1=cassandra,2=best-effort] */
    double cpu_share[4][3] = {};
    double mem_share[4][3] = {};
    double storage_share[4][3] = {};
    size_t be_finished = 0;
};

template <typename MakeManager>
Result
runDay(uint64_t seed, MakeManager make)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    auto manager = make(cluster, registry);
    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 20.0,
                                                    .record_every = 6});

    workload::WorkloadFactory factory{stats::Rng(seed)};
    Workload mc = factory.memcachedService(
        "memcached", 2.4e6, 200e-6, 1024.0,
        std::make_shared<tracegen::DiurnalLoad>(0.6e6, 2.4e6, kDay,
                                                14.0 * 3600.0));
    Workload cas = factory.cassandraService(
        "cassandra", 60e3, 30e-3, 4096.0,
        std::make_shared<tracegen::DiurnalLoad>(18e3, 60e3, kDay,
                                                15.0 * 3600.0));
    WorkloadId mc_id = registry.add(mc);
    WorkloadId cas_id = registry.add(cas);
    drv.addArrival(mc_id, 1.0);
    drv.addArrival(cas_id, 30.0);

    std::vector<WorkloadId> be_ids;
    for (double t = 60.0; t < kDay * 0.9; t += 10.0) {
        Workload be =
            factory.bestEffortJob("be-" + std::to_string(int(t)));
        be.total_work *= 4.0;
        WorkloadId id = registry.add(be);
        be_ids.push_back(id);
        drv.addArrival(id, t);
    }

    Result res;
    double counts[4] = {};
    drv.setTickHook([&](double t) {
        if (std::fmod(t, 120.0) > 20.5)
            return;
        int window = std::min(3, int(t / (kDay / 4.0)));
        counts[window] += 1.0;
        double total_cores = cluster.totalCores();
        double total_mem = cluster.totalMemoryGb();
        double total_storage = cluster.totalStorageGb();
        for (size_t s = 0; s < cluster.size(); ++s) {
            for (const sim::TaskShare &task :
                 cluster.server(ServerId(s)).tasks()) {
                int cat = task.workload == mc_id    ? 0
                          : task.workload == cas_id ? 1
                                                    : 2;
                res.cpu_share[window][cat] +=
                    task.cores_used / total_cores;
                res.mem_share[window][cat] +=
                    task.memory_gb / total_mem;
                res.storage_share[window][cat] +=
                    task.storage_gb / total_storage;
            }
        }
    });

    drv.run(kDay);

    for (int wdw = 0; wdw < 4; ++wdw) {
        for (int c = 0; c < 3; ++c) {
            if (counts[wdw] > 0) {
                res.cpu_share[wdw][c] /= counts[wdw];
                res.mem_share[wdw][c] /= counts[wdw];
                res.storage_share[wdw][c] /= counts[wdw];
            }
        }
    }

    auto digest = [&](WorkloadId id, stats::TimeSeries &offered,
                      stats::TimeSeries &served, double &qos,
                      double &track, std::vector<double> &lat_ms) {
        const driver::ServiceTrace *tr = drv.serviceTrace(id);
        double qos_w = 0.0, track_w = 0.0, off_sum = 0.0;
        for (size_t i = 0; i < tr->offered_qps.size(); ++i) {
            double off = tr->offered_qps.valueAt(i);
            offered.record(tr->offered_qps.timeAt(i), off);
            served.record(tr->served_ok_qps.timeAt(i),
                          tr->served_ok_qps.valueAt(i));
            lat_ms.push_back(1e3 * tr->p99_latency.valueAt(i));
            if (off > 0.0) {
                qos_w += tr->qos_fraction.valueAt(i) * off;
                track_w += std::min(
                    tr->served_ok_qps.valueAt(i) / off, 1.0) * off;
                off_sum += off;
            }
        }
        qos = off_sum > 0 ? qos_w / off_sum : 0.0;
        track = off_sum > 0 ? track_w / off_sum : 0.0;
    };
    digest(mc_id, res.mc_offered, res.mc_served, res.mc_qos,
           res.mc_track, res.mc_latency_ms);
    digest(cas_id, res.cas_offered, res.cas_served, res.cas_qos,
           res.cas_track, res.cas_latency_ms);

    for (WorkloadId id : be_ids)
        if (registry.get(id).completed)
            ++res.be_finished;
    return res;
}

void
printSeries(const char *label, const stats::TimeSeries &ts,
            double scale)
{
    std::printf("%-9s", label);
    for (int h = 2; h <= 24; h += 2)
        std::printf(" %6.0f",
                    scale * ts.meanOver((h - 2) * 3600.0, h * 3600.0));
    std::printf("\n");
}

const char *kCat[3] = {"memcached", "cassandra", "best-effort"};

void
printShares(const char *resource, const double share[4][3])
{
    std::printf("%s (%% of cluster, per 6h window):\n", resource);
    std::printf("  %-12s %8s %8s %8s %8s\n", "category", "0-6h",
                "6-12h", "12-18h", "18-24h");
    for (int c = 0; c < 3; ++c) {
        std::printf("  %-12s", kCat[c]);
        for (int wdw = 0; wdw < 4; ++wdw)
            std::printf(" %7.1f%%", 100.0 * share[wdw][c]);
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 9: stateful latency-critical services over "
                  "24h, Quasar vs auto-scaling");

    workload::WorkloadFactory seed_factory{stats::Rng(909)};
    auto offline = bench::standardSeeds(seed_factory, 4);

    Result as = runDay(1909, [&](auto &c, auto &r) {
        baselines::AutoScaleConfig cfg;
        cfg.max_instances = 24;
        cfg.instance_memory_gb = 24.0;
        return std::make_unique<baselines::AutoScaleManager>(c, r, cfg,
                                                             444);
    });
    Result qs = runDay(1909, [&](auto &c, auto &r) {
        core::QuasarConfig cfg;
        cfg.seed = 990;
        auto m = std::make_unique<core::QuasarManager>(c, r, cfg);
        m->seedOffline(offline, 0.0);
        return m;
    });

    bench::section("memcached throughput (kQPS, 2h windows)");
    printSeries("target", qs.mc_offered, 1e-3);
    printSeries("autoscl", as.mc_served, 1e-3);
    printSeries("quasar", qs.mc_served, 1e-3);
    std::printf("queries meeting 200us QoS: autoscale %.1f%%, quasar "
                "%.1f%% (paper: 80%% vs 98.8%%)\n",
                100.0 * as.mc_qos, 100.0 * qs.mc_qos);

    bench::section("cassandra throughput (kQPS, 2h windows)");
    printSeries("target", qs.cas_offered, 1e-3);
    printSeries("autoscl", as.cas_served, 1e-3);
    printSeries("quasar", qs.cas_served, 1e-3);
    std::printf("queries meeting 30ms QoS: autoscale %.1f%%, quasar "
                "%.1f%% (paper: 93%% vs 98.6%%)\n",
                100.0 * as.cas_qos, 100.0 * qs.cas_qos);

    bench::section("latency distribution across the day (p99 per "
                   "sample)");
    {
        stats::Samples s;
        s.addAll(qs.mc_latency_ms);
        stats::Samples a;
        a.addAll(as.mc_latency_ms);
        std::printf("memcached p99 (ms): quasar p50/p90/max = "
                    "%.2f/%.2f/%.2f, autoscale = %.2f/%.2f/%.2f\n",
                    s.percentile(50), s.percentile(90), s.max(),
                    a.percentile(50), a.percentile(90), a.max());
        stats::Samples sc, ac;
        sc.addAll(qs.cas_latency_ms);
        ac.addAll(as.cas_latency_ms);
        std::printf("cassandra p99 (ms): quasar p50/p90/max = "
                    "%.1f/%.1f/%.1f, autoscale = %.1f/%.1f/%.1f\n",
                    sc.percentile(50), sc.percentile(90), sc.max(),
                    ac.percentile(50), ac.percentile(90), ac.max());
    }

    std::printf("\nthroughput tracking (served-in-QoS / offered): "
                "memcached autoscale %.1f%% vs quasar %.1f%% "
                "(paper: -24%% vs target for autoscale); cassandra "
                "%.1f%% vs %.1f%% (paper: -12%%)\n",
                100.0 * as.mc_track, 100.0 * qs.mc_track,
                100.0 * as.cas_track, 100.0 * qs.cas_track);
    std::printf("best-effort finished: autoscale %zu, quasar %zu\n",
                as.be_finished, qs.be_finished);

    bench::banner("Fig. 10: resource-usage split under Quasar "
                  "(four 6h windows)");
    printShares("CPU", qs.cpu_share);
    printShares("memory", qs.mem_share);
    printShares("storage", qs.storage_share);
    std::printf("\npaper reference: CPU mostly goes to best-effort "
                "tasks, memory to memcached, and disk I/O to "
                "Cassandra; the best-effort share follows the diurnal "
                "trough of the services.\n");
    return 0;
}
