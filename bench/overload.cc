/**
 * @file
 * Overload-control bench: open-loop diurnal + flash-crowd traffic
 * through the full manager, controller off vs on, reporting the QoS
 * cost of overload and what shedding / backpressure / brownout / the
 * PI service autoscaler buy back.
 *
 * Traffic: ChurnEngine stream shaped by a PiecewiseLoad rate pattern
 * — a diurnal swell (0.5x -> 1.1x of the configured rate) with a
 * flash crowd at t in [450, 600) that multiplies the arrival rate by
 * 10. The mix is best-effort heavy (the Alibaba co-location shape) so
 * the controller has sheddable work to sacrifice for the latency
 * services.
 *
 * Per leg the bench reports the four-way QoS outcome split (completed
 * / departed / shed / active, plus degraded-ever), shed fraction,
 * goodput, the latency services' QoS-violation rate, time-in-state of
 * the detector, controller counters, and both replay hashes: the
 * per-tick placement fold and the controller's own decision hash.
 *
 * Gates (exit 1):
 *  - replay: the controller-on leg re-run under the cached scheduler
 *    index and re-replayed under dirty must reproduce both hashes
 *    bit-identically;
 *  - accounting: completed + departed + shed + active == arrivals in
 *    every leg (no arrival leaks out of the outcome split);
 *  - QoS: controller-on must violate strictly less than
 *    controller-off over the crowd-and-recovery window [450, 750),
 *    and (with --baseline) must stay within --max-regression
 *    (absolute) of the committed BENCH_overload.json's on-dirty
 *    crowd-window violation rate.
 *
 * `--smoke` is the CI variant: the 200-server legs only. The full
 * run adds 500-server off/on legs and google-trace-fitted synth
 * legs (trace::fitChurnConfig) with the same flash-crowd overlay.
 * (500, not 1000: the controller-off leg at 1000 servers spends
 * tens of minutes draining a many-hundred-deep admission queue
 * against a saturated cluster — all cost, no extra signal.)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "churn/churn.hh"
#include "core/manager.hh"
#include "core/overload.hh"
#include "driver/scenario.hh"
#include "trace/google.hh"
#include "trace/mapper.hh"
#include "trace/synth.hh"
#include "tracegen/load_pattern.hh"

using namespace quasar;

namespace
{

/** The paper's testbeds, scaled up by replicating the EC2 mix. */
sim::Cluster
clusterOfSize(int servers)
{
    if (servers == 40)
        return sim::Cluster::localCluster();
    if (servers == 200)
        return sim::Cluster::ec2Cluster();
    auto catalog = sim::ec2Platforms();
    std::vector<int> counts = {6, 6, 8, 14, 6, 8, 16, 30,
                               8, 30, 8, 16, 30, 14};
    for (int &c : counts)
        c *= servers / 200;
    return sim::Cluster(catalog, counts);
}

/** The flash crowd hits at 450 s; QoS is also scored over the crowd
 *  plus its recovery tail, where overload control earns its keep. */
constexpr double kCrowdStart = 450.0;
constexpr double kCrowdWindowEnd = 750.0;

/** Diurnal swell with a 10x flash crowd at t in [450, 600). */
tracegen::LoadPatternPtr
diurnalFlashCrowd()
{
    return std::make_shared<tracegen::PiecewiseLoad>(
        std::vector<std::pair<double, double>>{{0.0, 0.5},
                                               {150.0, 0.9},
                                               {300.0, 1.1},
                                               {440.0, 1.0},
                                               {450.0, 10.0},
                                               {595.0, 10.0},
                                               {600.0, 1.0},
                                               {750.0, 0.7},
                                               {900.0, 0.5}});
}

/** Best-effort-heavy open-loop stream shaped by the crowd pattern. */
churn::ChurnConfig
streamFor(int servers, double horizon_s)
{
    churn::ChurnConfig cfg;
    cfg.seed = 20260808;
    cfg.arrivals = churn::ArrivalKind::Poisson;
    cfg.arrival_rate_per_s = 0.16 * double(servers) / 200.0;
    cfg.rate_pattern = diurnalFlashCrowd();
    cfg.horizon_s = horizon_s;
    cfg.mix = {0.30, 0.15, 0.15, 0.40};
    cfg.phase_change_fraction = 0.05;
    cfg.service_lifetime =
        tracegen::DurationSpec::lognormal(0.5 * horizon_s, 0.6);
    cfg.analytics_lifetime =
        tracegen::DurationSpec::pareto(0.25 * horizon_s, 1.8);
    cfg.batch_lifetime =
        tracegen::DurationSpec::exponential(0.2 * horizon_s);
    cfg.best_effort_lifetime =
        tracegen::DurationSpec::exponential(0.15 * horizon_s);
    return cfg;
}

/** The controller configuration every "on" leg runs. */
core::OverloadConfig
controllerOn()
{
    core::OverloadConfig cfg;
    cfg.enabled = true;
    cfg.util_pressured = 0.85;
    cfg.util_overloaded = 0.97;
    cfg.depth_pressured = 8;
    cfg.depth_overloaded = 24;
    cfg.min_dwell_s = 30.0;
    cfg.defer_base_s = 15.0;
    cfg.defer_max_s = 60.0;
    cfg.shed_deadline_s = 120.0;
    cfg.aging_limit_s = 240.0;
    cfg.brownout = true;
    cfg.policy = core::ScalingPolicyKind::Pi;
    cfg.scale_interval_s = 30.0;
    return cfg;
}

struct LegMetrics
{
    size_t arrivals = 0;
    size_t completed = 0;
    size_t departed = 0;
    size_t shed = 0;
    size_t active = 0;
    size_t degraded = 0;
    double shed_fraction = 0.0;
    double goodput_fraction = 0.0;
    double qos_violation_rate = 0.0;
    /** Same, but over [kCrowdStart, kCrowdWindowEnd) only. */
    double qos_violation_crowd = 0.0;
    double frac_pressured = 0.0;
    double frac_overloaded = 0.0;
    size_t deferred = 0;
    size_t brownouts = 0;
    size_t restores = 0;
    size_t autoscale_updates = 0;
    size_t transitions = 0;
    double decisions_per_s = 0.0;
    double mean_admission_depth = 0.0;
    size_t max_admission_depth = 0;
    uint64_t placement_hash = 0;
    uint64_t decision_hash = 0;
};

/** Fold the cluster's full allocation state into a running FNV-1a. */
void
hashClusterState(const sim::Cluster &cluster, uint64_t &h)
{
    auto fold = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ULL;
    };
    for (size_t s = 0; s < cluster.size(); ++s) {
        const sim::Server &srv = cluster.server(ServerId(s));
        fold(uint64_t(s) << 32 | uint64_t(srv.coresAllocated()));
        for (const sim::TaskShare &t : srv.tasks()) {
            // Socket folded into the high bits of the workload
            // word: ids stay far below 2^48, and socket 0 leaves the
            // pre-topology hash untouched (flat bit-identity).
            fold(uint64_t(t.workload) | uint64_t(t.socket) << 48);
            fold(uint64_t(t.cores));
        }
    }
}

LegMetrics
runLeg(int servers, double horizon_s, const churn::ChurnConfig &ccfg,
       bool controller, bool dirty)
{
    sim::Cluster cluster = clusterOfSize(servers);
    workload::WorkloadRegistry registry;

    core::QuasarConfig qcfg;
    qcfg.scheduler.dirty_set = dirty;
    qcfg.proactive_interval_s = horizon_s / 3.0;
    if (controller)
        qcfg.overload = controllerOn();
    core::QuasarManager mgr(cluster, registry, qcfg);
    workload::WorkloadFactory seeder{stats::Rng(4242)};
    mgr.seedOffline(seeder, 16);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 15.0, .record_every = 2});

    churn::ChurnEngine engine(ccfg);
    engine.install(cluster, registry, drv);

    LegMetrics m;
    double depth_sum = 0.0;
    size_t depth_n = 0;
    uint64_t hash = 0xCBF29CE484222325ULL;
    drv.setTickHook([&](double) {
        size_t d = mgr.admission().size();
        depth_sum += double(d);
        ++depth_n;
        m.max_admission_depth = std::max(m.max_admission_depth, d);
        hashClusterState(cluster, hash);
    });

    drv.run(horizon_s);

    const core::QuasarStats &st = mgr.stats();
    m.arrivals = engine.plan().size();
    for (const churn::ChurnItem &item : engine.plan()) {
        const workload::Workload &w = registry.get(item.id);
        switch (driver::outcomeOf(w)) {
        case driver::WorkloadOutcome::Completed:
            ++m.completed;
            break;
        case driver::WorkloadOutcome::Departed:
            ++m.departed;
            break;
        case driver::WorkloadOutcome::Shed:
            ++m.shed;
            break;
        case driver::WorkloadOutcome::Active:
            ++m.active;
            break;
        }
        if (w.brownout_ever)
            ++m.degraded;
    }
    m.shed_fraction =
        m.arrivals ? double(m.shed) / double(m.arrivals) : 0.0;
    m.goodput_fraction =
        m.arrivals ? double(m.completed + m.departed) / double(m.arrivals)
                   : 0.0;

    double qos_sum = 0.0;
    size_t qos_n = 0;
    double crowd_sum = 0.0;
    size_t crowd_n = 0;
    for (const churn::ChurnItem &item : engine.plan()) {
        if (item.cls != churn::ChurnClass::Service)
            continue;
        const driver::ServiceTrace *trace = drv.serviceTrace(item.id);
        if (!trace || trace->qos_fraction.size() == 0)
            continue;
        qos_sum += trace->qos_fraction.mean();
        ++qos_n;
        // Crowd-window score only for services that were actually
        // sampled inside the window (meanOver returns 0 when none
        // were, which would misread absence as total violation).
        const stats::TimeSeries &qf = trace->qos_fraction;
        bool in_window = false;
        for (size_t i = 0; i < qf.size() && !in_window; ++i)
            in_window = qf.timeAt(i) >= kCrowdStart &&
                        qf.timeAt(i) < kCrowdWindowEnd;
        if (in_window) {
            crowd_sum += qf.meanOver(kCrowdStart, kCrowdWindowEnd);
            ++crowd_n;
        }
    }
    m.qos_violation_rate = qos_n ? 1.0 - qos_sum / double(qos_n) : 0.0;
    m.qos_violation_crowd =
        crowd_n ? 1.0 - crowd_sum / double(crowd_n) : 0.0;

    const core::OverloadController &ctl = mgr.overload();
    m.frac_pressured = ctl.fractionIn(core::OverloadState::Pressured);
    m.frac_overloaded = ctl.fractionIn(core::OverloadState::Overloaded);
    m.deferred = st.overload_deferred;
    m.brownouts = st.brownouts;
    m.restores = st.brownout_restores;
    m.autoscale_updates = st.autoscale_updates;
    m.transitions = st.overload_transitions;
    m.decisions_per_s = st.schedule_time.total_s > 0.0
                            ? double(st.schedule_time.count) /
                                  st.schedule_time.total_s
                            : 0.0;
    m.mean_admission_depth =
        depth_n ? depth_sum / double(depth_n) : 0.0;
    m.placement_hash = hash;
    m.decision_hash = ctl.decisionHash();
    return m;
}

/** qos_violation_crowd of the named leg in a committed baseline. */
double
baselineQos(const std::string &path, const char *leg)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return std::nan("");
    char line[2048];
    char want[64];
    std::snprintf(want, sizeof(want), "\"leg\": \"%s\"", leg);
    double qos = std::nan("");
    while (std::fgets(line, sizeof(line), f)) {
        if (!std::strstr(line, want))
            continue;
        const char *key =
            std::strstr(line, "\"qos_violation_crowd\":");
        if (key)
            qos = std::atof(key +
                            std::strlen("\"qos_violation_crowd\":"));
        break;
    }
    std::fclose(f);
    return qos;
}

void
printLeg(const char *name, const LegMetrics &m)
{
    std::printf(
        "  %-15s: qos-viol %.3f (crowd %.3f)  shed %.3f (%zu)  "
        "goodput %.3f  done %zu dep %zu act %zu  degr %zu  "
        "t-press %.2f t-over %.2f\n",
        name, m.qos_violation_rate, m.qos_violation_crowd,
        m.shed_fraction, m.shed, m.goodput_fraction, m.completed,
        m.departed, m.active, m.degraded, m.frac_pressured,
        m.frac_overloaded);
    std::printf(
        "        controller: defer %zu brownout %zu/%zu "
        "autoscale %zu transitions %zu  depth %.1f/%zu  "
        "%.0f decisions/s  place %016llx decide %016llx\n",
        m.deferred, m.brownouts, m.restores, m.autoscale_updates,
        m.transitions, m.mean_admission_depth, m.max_admission_depth,
        m.decisions_per_s, (unsigned long long)m.placement_hash,
        (unsigned long long)m.decision_hash);
}

void
writeLeg(std::FILE *out, const char *name, int servers,
         bool controller, const char *mode, const LegMetrics &m,
         bool identical, bool last)
{
    std::fprintf(
        out,
        "    {\"leg\": \"%s\", \"servers\": %d, "
        "\"controller\": %s, \"mode\": \"%s\", "
        "\"arrivals\": %zu, \"completed\": %zu, "
        "\"departed\": %zu, \"shed\": %zu, \"active\": %zu, "
        "\"degraded\": %zu, \"shed_fraction\": %.4f, "
        "\"goodput_fraction\": %.4f, "
        "\"qos_violation_rate\": %.4f, "
        "\"qos_violation_crowd\": %.4f, "
        "\"frac_pressured\": %.4f, \"frac_overloaded\": %.4f, "
        "\"deferred\": %zu, \"brownouts\": %zu, "
        "\"restores\": %zu, \"autoscale_updates\": %zu, "
        "\"transitions\": %zu, \"decisions_per_s\": %.1f, "
        "\"mean_admission_depth\": %.2f, "
        "\"max_admission_depth\": %zu, "
        "\"placement_hash\": \"%016llx\", "
        "\"decision_hash\": \"%016llx\", \"identical\": %s}%s\n",
        name, servers, controller ? "true" : "false", mode,
        m.arrivals, m.completed, m.departed, m.shed, m.active,
        m.degraded, m.shed_fraction, m.goodput_fraction,
        m.qos_violation_rate, m.qos_violation_crowd,
        m.frac_pressured, m.frac_overloaded,
        m.deferred, m.brownouts, m.restores, m.autoscale_updates,
        m.transitions, m.decisions_per_s, m.mean_admission_depth,
        m.max_admission_depth, (unsigned long long)m.placement_hash,
        (unsigned long long)m.decision_hash,
        identical ? "true" : "false", last ? "" : ",");
}

int
runOverloadBench(bool smoke, const std::string &out_path,
                 const std::string &baseline_path,
                 double max_regression,
                 const std::string &traces_dir)
{
    const double horizon = 900.0;
    const int gate_servers = 200;

    bench::banner(smoke ? "overload control (smoke): flash crowd, "
                          "controller off vs on"
                        : "overload control: flash crowd at 200/500 "
                          "servers + google-fitted synth legs");

    struct Leg
    {
        const char *name;
        int servers;
        bool controller;
        bool dirty;
        LegMetrics m;
    };
    std::vector<Leg> legs = {
        {"off-dirty", gate_servers, false, true, {}},
        {"on-dirty", gate_servers, true, true, {}},
        {"on-cached", gate_servers, true, false, {}},
        {"on-dirty-replay", gate_servers, true, true, {}},
    };
    if (!smoke) {
        legs.push_back({"off-500", 500, false, true, {}});
        legs.push_back({"on-500", 500, true, true, {}});
    }

    for (Leg &leg : legs) {
        std::printf("  running %s...\n", leg.name);
        std::fflush(stdout);
        leg.m = runLeg(leg.servers, horizon,
                       streamFor(leg.servers, horizon),
                       leg.controller, leg.dirty);
    }

    // Full-run synth legs: fit a churn stream to the bundled google
    // fixture and overlay the same flash-crowd pattern on it, so the
    // crowd rides on trace-shaped arrivals and lifetimes.
    if (!smoke) {
        trace::TraceStream stream = trace::parseGoogleTaskEventsFile(
            traces_dir + "/google_task_events.csv");
        if (stream.events.empty())
            stream = trace::parseGoogleTaskEventsFile(
                traces_dir + "/google_task_events.csv.gz");
        if (stream.events.empty()) {
            std::printf("no google fixture under %s; skipping the "
                        "synth legs\n",
                        traces_dir.c_str());
        } else {
            trace::TraceMapperConfig mcfg;
            mcfg.target_horizon_s = horizon;
            mcfg.target_servers = 500;
            mcfg.seed = 20260808;
            trace::MappedTrace mapped = trace::mapTrace(stream, mcfg);
            trace::SynthFit fit =
                trace::fitChurnConfig(mapped, 20260808, horizon);
            churn::ChurnConfig synth = fit.config;
            synth.rate_pattern = diurnalFlashCrowd();
            // The fitted rate reflects the trace's average
            // pressure; clamp it so the 10x crowd overlay lands in
            // the overload regime without drowning the off leg in a
            // many-thousand-deep queue (the google fixture fits to
            // ~6.3/s at 500 servers, which the crowd would multiply
            // to ~63/s — hours of saturated-cluster retries for no
            // extra signal).
            synth.arrival_rate_per_s =
                std::clamp(synth.arrival_rate_per_s, 0.4, 0.5);
            std::printf("  running synth legs (fitted rate "
                        "%.3f/s)...\n",
                        synth.arrival_rate_per_s);
            std::fflush(stdout);
            legs.push_back({"synth-off", 500, false, true,
                            runLeg(500, horizon, synth, false, true)});
            legs.push_back({"synth-on", 500, true, true,
                            runLeg(500, horizon, synth, true, true)});
        }
    }

    // Replay gate: every controller-on leg at the gate scale must
    // reproduce the on-dirty leg's placement AND decision hashes —
    // across the scheduler index mode and across a full re-replay.
    const LegMetrics &on = legs[1].m;
    bool replay_ok = true;
    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"name\": \"overload\",\n  \"smoke\": %s,\n"
                 "  \"horizon_s\": %.0f,\n  \"legs\": [\n",
                 smoke ? "true" : "false", horizon);
    for (size_t i = 0; i < legs.size(); ++i) {
        const Leg &leg = legs[i];
        bool identical = true;
        if (leg.controller && leg.servers == gate_servers &&
            std::strcmp(leg.name, "on-dirty") != 0)
            identical = leg.m.placement_hash == on.placement_hash &&
                        leg.m.decision_hash == on.decision_hash;
        replay_ok = replay_ok && identical;
        printLeg(leg.name, leg.m);
        if (!identical)
            std::printf("        ^^ DIVERGED from on-dirty\n");
        writeLeg(out, leg.name, leg.servers, leg.controller,
                 leg.dirty ? "dirty" : "cached", leg.m, identical,
                 i + 1 == legs.size());
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    int rc = 0;
    if (!replay_ok) {
        std::fprintf(stderr,
                     "FAIL: overload decisions diverged across "
                     "scheduler modes / re-replay\n");
        rc = 1;
    }
    for (const Leg &leg : legs) {
        size_t sum = leg.m.completed + leg.m.departed + leg.m.shed +
                     leg.m.active;
        if (sum != leg.m.arrivals) {
            std::fprintf(stderr,
                         "FAIL: leg %s leaks arrivals: "
                         "%zu + %zu + %zu + %zu != %zu\n",
                         leg.name, leg.m.completed, leg.m.departed,
                         leg.m.shed, leg.m.active, leg.m.arrivals);
            rc = 1;
        }
    }
    const LegMetrics &off = legs[0].m;
    if (!(on.qos_violation_crowd < off.qos_violation_crowd)) {
        std::fprintf(stderr,
                     "FAIL: controller on does not improve "
                     "crowd-window QoS (%.4f vs off %.4f)\n",
                     on.qos_violation_crowd, off.qos_violation_crowd);
        rc = 1;
    } else {
        std::printf("qos gate ok: crowd-window violation on %.4f < "
                    "off %.4f (shed %.3f of arrivals for it)\n",
                    on.qos_violation_crowd, off.qos_violation_crowd,
                    on.shed_fraction);
    }
    if (!baseline_path.empty()) {
        double base = baselineQos(baseline_path, "on-dirty");
        if (std::isnan(base)) {
            std::printf("no usable baseline at %s; skipping the "
                        "regression gate\n",
                        baseline_path.c_str());
        } else if (on.qos_violation_crowd > base + max_regression) {
            std::fprintf(stderr,
                         "FAIL: on-dirty crowd-window qos violation "
                         "%.4f regressed more than %.2f above the "
                         "committed baseline %.4f\n",
                         on.qos_violation_crowd, max_regression,
                         base);
            rc = 1;
        } else {
            std::printf("baseline gate ok: %.4f vs committed %.4f "
                        "(+%.2f allowed)\n",
                        on.qos_violation_crowd, base, max_regression);
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_overload.json";
    std::string baseline_path;
    std::string traces_dir = "tests/traces";
    double max_regression = 0.05;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = arg.substr(11);
        else if (arg.rfind("--max-regression=", 0) == 0)
            max_regression = std::atof(arg.c_str() + 17);
        else if (arg.rfind("--traces=", 0) == 0)
            traces_dir = arg.substr(9);
    }
    return runOverloadBench(smoke, out_path, baseline_path,
                            max_regression, traces_dir);
}
