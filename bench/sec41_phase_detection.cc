/**
 * @file
 * Reproduces the paper's Sec. 4.1 phase-detection numbers: with
 * reactive detection alone Quasar catches ~94% of phase changes; with
 * proactive sampling (20% of active workloads every 10 minutes) ~78%
 * of changes are caught proactively, with ~8% false positives.
 *
 * Method: workloads are classified, placed on a quiet server at their
 * right-sized allocation, and then undergo a hidden phase change
 * (rate, memory demand, and interference behaviour morph). Reactive
 * detection fires when monitored performance drops below the
 * constraint; proactive detection fires when an in-place interference
 * probe deviates from the classified tolerance. False positives are
 * probes that fire on workloads without a phase change.
 */

#include <cmath>

#include "bench/common.hh"
#include "core/classifier.hh"
#include "core/monitor.hh"
#include "workload/queueing.hh"

using namespace quasar;
using workload::Workload;

int
main()
{
    bench::banner("Sec. 4.1: phase-change detection "
                  "(reactive and proactive)");

    auto catalog = sim::localPlatforms();
    profiling::Profiler profiler(catalog, {});
    core::Classifier clf(profiler, {}, 41);
    workload::WorkloadFactory factory{stats::Rng(414)};
    auto seeds = bench::standardSeeds(factory, 4);
    clf.seedOffline(seeds, 0.0);

    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    core::Monitor monitor(cluster, registry, core::MonitorConfig{},
                          stats::Rng(4141));

    stats::Rng rng(999);
    const int trials = 200;
    int phase_total = 0, reactive_hits = 0, proactive_hits = 0;
    int clean_total = 0, false_positives = 0;
    static const char *families[] = {"spec-int", "parsec", "minebench",
                                     "specjbb", "mix"};

    for (int i = 0; i < trials; ++i) {
        Workload w;
        double x = rng.uniform();
        if (x < 0.4)
            w = factory.hadoopJob("w", rng.uniform(5.0, 80.0));
        else if (x < 0.6) {
            double q = rng.uniform(5e4, 2e5);
            w = factory.memcachedService(
                "w", q, 200e-6, 40.0,
                std::make_shared<tracegen::FlatLoad>(q));
        } else
            w = factory.singleNodeJob("w", families[i % 5]);

        bool has_phase = rng.chance(0.5);
        WorkloadId id = registry.add(w);
        Workload &live = registry.get(id);

        auto data = profiler.profile(live, 0.0, rng);
        auto est = clf.classify(live, data);

        // Place right-sized on the profiling platform (quiet server).
        auto hosts = cluster.serversOfPlatform(
            catalog[profiler.scaleUpPlatform()].name);
        sim::Server &srv = cluster.server(hosts[i % hosts.size()]);
        sim::TaskShare share;
        share.workload = id;
        share.cores = est.reference.cores;
        share.memory_gb =
            std::min(est.reference.memory_gb,
                     srv.platform().memory_gb - srv.memoryAllocated());
        share.storage_gb = 0.0;
        share.caused = live.causedPressure(0.0, share.cores);
        srv.place(share);
        live.active_knobs = est.reference.knobs;

        // Target = measured performance at placement (it was meeting
        // its constraint before the phase change).
        double base = monitor.oracle().currentRate(live, 0.0);
        if (workload::isLatencyCritical(live.type)) {
            double cap =
                monitor.oracle().serviceCapacityQps(live, 0.0);
            live.target = workload::PerformanceTarget::qpsLatency(
                0.8 * workload::maxQpsWithinQos(
                          cap, live.target.latency_qos_s),
                live.target.latency_qos_s);
            live.load = std::make_shared<tracegen::FlatLoad>(
                live.target.qps);
        } else {
            live.total_work = 1e18; // long-running
            live.target = workload::PerformanceTarget::ips(base);
        }

        if (has_phase) {
            factory.addPhaseChange(live, 100.0);
            ++phase_total;
            // Reactive: does monitoring notice after the change?
            // Any deviation alert (under-performing OR resources
            // idling) triggers reclassification in Quasar.
            bool reactive = false;
            for (double t = 110.0; t <= 200.0; t += 10.0)
                reactive = reactive ||
                           monitor.check(live, t) !=
                               core::Alert::None;
            if (reactive)
                ++reactive_hits;
            // Proactive: in-place interference probe.
            if (monitor.probePhaseChange(live, est, profiler, 150.0))
                ++proactive_hits;
        } else {
            ++clean_total;
            if (monitor.probePhaseChange(live, est, profiler, 150.0))
                ++false_positives;
        }
        srv.remove(id);
    }

    std::printf("\nphase changes injected: %d; clean workloads: %d\n",
                phase_total, clean_total);
    std::printf("reactive detection  : %5.1f%%  (paper: 94%%)\n",
                100.0 * reactive_hits / phase_total);
    std::printf("proactive detection : %5.1f%%  (paper: 78%% with 20%% "
                "sampling every 10 min)\n",
                100.0 * proactive_hits / phase_total);
    std::printf("false positives     : %5.1f%%  (paper: 8%%)\n",
                100.0 * false_positives / clean_total);
    return 0;
}
