/**
 * @file
 * Churn bench: sustained open-loop workload streams through the full
 * Quasar manager at 1k / 5k / 10k / 50k / 100k servers, comparing the
 * scheduler's two production decision paths (dirty-set maintained
 * order, per-call cached index) under identical seeded churn. The
 * legacy full_rescan path is tests-only (QUASAR_VERIFY shadow oracle
 * + equivalence tests) and no longer carries a bench leg. At 50k and
 * 100k the cached mode's O(N)-per-call walk is too slow to be a
 * useful referee, so those scales instead run the dirty mode twice
 * ("dirty-rerun") and require the two replays to produce identical
 * placement hashes — a determinism check at the scale the maintained
 * order was built for.
 *
 * For each (scale, mode) the bench reports sustained decisions/sec,
 * admission-queue depth, the QoS-violation rate of the latency
 * services in the stream, and the full wall-clock breakdown —
 * classify / profile / schedule / adapt from QuasarStats, rank /
 * place from SchedulerTiming, and the driver tick envelope — then
 * writes everything to BENCH_churn.json.
 *
 * Divergence detection: every tick folds the complete allocation
 * state (server x workload x cores) into a running FNV-1a hash; any
 * placement difference between scheduler modes at any tick produces
 * different final hashes. The bench fails if the modes diverge, and
 * (with --baseline) if the dirty-mode decisions/sec at the gate scale
 * regressed more than --max-regression against the committed
 * BENCH_churn.json.
 *
 * Sharded legs (DESIGN.md §14): the same streams through the
 * ShardedScheduler's deterministic-merge commit. K=1 proves hash
 * identity with the classic path; K=4 carries the 10k/50k legs; a
 * K ∈ {1,2,4,8} sweep at 100k records scaling efficiency (each K's
 * decisions/s relative to the sharded K=1 leg). Every sharded leg
 * must reproduce the classic dirty placement hash bit-exactly — in
 * the run (vs the dirty leg at the same scale) and, with --baseline,
 * against the committed BENCH_churn.json rows.
 *
 * `--smoke` is the CI variant: the 1000-server slice only, both
 * modes, plus a dirty-only 10k leg and sharded K=1 (1k) / K=4 (10k)
 * legs, same horizon as the full run so its decisions/sec compare
 * directly against the committed baseline. The full run adds 5000
 * and 10000 servers.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "bench/common.hh"
#include "churn/churn.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;

namespace
{

/** The paper's testbeds, scaled up by replicating the EC2 mix. */
sim::Cluster
clusterOfSize(int servers)
{
    if (servers == 40)
        return sim::Cluster::localCluster();
    if (servers == 200)
        return sim::Cluster::ec2Cluster();
    auto catalog = sim::ec2Platforms();
    std::vector<int> counts = {6, 6, 8, 14, 6, 8, 16, 30,
                               8, 30, 8, 16, 30, 14};
    for (int &c : counts)
        c *= servers / 200;
    return sim::Cluster(catalog, counts);
}

const char *
modeName(bool dirty, bool full, bool rerun = false, int shards = 0)
{
    // "sharded-k%d" never substring-matches the baseline parser's
    // `"mode": "dirty"` probe (the probe includes the closing quote),
    // so sharded rows can't alias the classic rows.
    static char shard_buf[32];
    if (shards > 0) {
        std::snprintf(shard_buf, sizeof(shard_buf), "sharded-k%d",
                      shards);
        return shard_buf;
    }
    if (rerun)
        return "dirty-rerun";
    return full ? "full_rescan" : dirty ? "dirty" : "cached";
}

struct ModeMetrics
{
    double decisions_per_s = 0.0;
    uint64_t schedule_calls = 0;
    double mean_admission_depth = 0.0;
    size_t max_admission_depth = 0;
    double qos_violation_rate = 0.0;
    uint64_t placement_hash = 0;
    /** Sharded legs only: the ShardedScheduler's running FNV-1a over
     *  committed (workload, socket, shard) words. */
    uint64_t decision_hash = 0;
    uint64_t merge_commits = 0;
    size_t completed = 0;
    size_t killed = 0;
    /** Wall-clock means, milliseconds. */
    double classify_ms = 0.0;
    double profile_ms = 0.0;
    double schedule_ms = 0.0;
    double adapt_ms = 0.0;
    double rank_ms = 0.0;
    double place_ms = 0.0;
    double tick_ms = 0.0;
};

/** Fold the cluster's full allocation state into a running FNV-1a. */
void
hashClusterState(const sim::Cluster &cluster, uint64_t &h)
{
    auto fold = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ULL;
    };
    for (size_t s = 0; s < cluster.size(); ++s) {
        const sim::Server &srv = cluster.server(ServerId(s));
        fold(uint64_t(s) << 32 | uint64_t(srv.available()));
        for (const sim::TaskShare &t : srv.tasks()) {
            // Socket folded into the high bits of the workload
            // word: ids stay far below 2^48, and socket 0 leaves the
            // pre-topology hash untouched (flat bit-identity).
            fold(uint64_t(t.workload) | uint64_t(t.socket) << 48);
            fold(uint64_t(t.cores));
        }
    }
}

churn::ChurnConfig
streamFor(int servers, double horizon_s)
{
    churn::ChurnConfig cfg;
    cfg.seed = 20260806;
    cfg.arrivals = churn::ArrivalKind::Pareto;
    cfg.pareto_alpha = 1.6;
    // Open-loop pressure scales with the cluster so the decision path
    // stays busy at every size.
    cfg.arrival_rate_per_s = 0.6 * double(servers) / 1000.0;
    cfg.horizon_s = horizon_s;
    cfg.phase_change_fraction = 0.06;
    cfg.server_mttf_s = 40.0 * horizon_s * double(servers);
    cfg.server_mttr_s = horizon_s / 6.0;
    // Short heavy-tailed lifetimes: steady arrival/departure churn
    // within the bench horizon.
    cfg.service_lifetime =
        tracegen::DurationSpec::lognormal(0.4 * horizon_s, 0.6);
    cfg.analytics_lifetime =
        tracegen::DurationSpec::pareto(0.25 * horizon_s, 1.8);
    cfg.batch_lifetime =
        tracegen::DurationSpec::exponential(0.2 * horizon_s);
    cfg.best_effort_lifetime =
        tracegen::DurationSpec::exponential(0.15 * horizon_s);
    return cfg;
}

ModeMetrics
runMode(int servers, double horizon_s, bool dirty, bool full,
        int shards = 0)
{
    sim::Cluster cluster = clusterOfSize(servers);
    workload::WorkloadRegistry registry;

    core::QuasarConfig qcfg;
    qcfg.scheduler.dirty_set = dirty;
    qcfg.scheduler.full_rescan = full;
    if (shards > 0) {
        // Sharded decision path, deterministic merge commit: the
        // placement hash must reproduce the classic dirty legs
        // bit-exactly at ANY K (DESIGN.md §14 replay contract).
        qcfg.shard.shards = uint32_t(shards);
        qcfg.shard.dirty_set = dirty;
        qcfg.shard.commit = shard::CommitMode::DeterministicMerge;
    }
    qcfg.proactive_interval_s = horizon_s / 3.0;
    core::QuasarManager mgr(cluster, registry, qcfg);
    workload::WorkloadFactory seeder{stats::Rng(4242)};
    mgr.seedOffline(seeder, 16);

    driver::ScenarioDriver drv(
        cluster, registry, mgr,
        driver::DriverConfig{.tick_s = 15.0, .record_every = 2});

    churn::ChurnEngine engine(streamFor(servers, horizon_s));
    engine.install(cluster, registry, drv);

    ModeMetrics m;
    double depth_sum = 0.0;
    size_t depth_n = 0;
    uint64_t hash = 0xCBF29CE484222325ULL;
    drv.setTickHook([&](double) {
        size_t d = mgr.admission().size();
        depth_sum += double(d);
        ++depth_n;
        m.max_admission_depth = std::max(m.max_admission_depth, d);
        hashClusterState(cluster, hash);
    });

    drv.run(horizon_s);

    const core::QuasarStats &st = mgr.stats();
    m.schedule_calls = st.schedule_time.count;
    m.decisions_per_s = st.schedule_time.total_s > 0.0
                            ? double(st.schedule_time.count) /
                                  st.schedule_time.total_s
                            : 0.0;
    m.mean_admission_depth =
        depth_n ? depth_sum / double(depth_n) : 0.0;
    m.placement_hash = hash;
    if (const shard::ShardedScheduler *sh = mgr.sharded()) {
        m.decision_hash = sh->decisionHash();
        m.merge_commits = sh->stats().merge_commits;
    }

    // QoS violations: mean shortfall of the in-QoS fraction over all
    // latency services the stream created.
    double qos_sum = 0.0;
    size_t qos_n = 0;
    for (const churn::ChurnItem &item : engine.plan()) {
        if (item.cls != churn::ChurnClass::Service)
            continue;
        const driver::ServiceTrace *trace = drv.serviceTrace(item.id);
        if (!trace || trace->qos_fraction.size() == 0)
            continue;
        qos_sum += trace->qos_fraction.mean();
        ++qos_n;
    }
    m.qos_violation_rate = qos_n ? 1.0 - qos_sum / double(qos_n) : 0.0;

    for (const churn::ChurnItem &item : engine.plan()) {
        const workload::Workload &w = registry.get(item.id);
        if (w.killed)
            ++m.killed;
        else if (w.completed)
            ++m.completed;
    }

    m.classify_ms = st.classify_time.meanSeconds() * 1e3;
    m.profile_ms = st.profile_time.meanSeconds() * 1e3;
    m.schedule_ms = st.schedule_time.meanSeconds() * 1e3;
    m.adapt_ms = st.adapt_time.meanSeconds() * 1e3;
    m.rank_ms = mgr.scheduler().timing().rank.meanSeconds() * 1e3;
    m.place_ms = mgr.scheduler().timing().place.meanSeconds() * 1e3;
    m.tick_ms = drv.tickTiming().meanSeconds() * 1e3;
    return m;
}

struct BaselineRow
{
    bool found = false;
    double rate = std::nan("");
    uint64_t hash = 0;
};

/** The committed dirty-mode row for a scale: decisions/s + hash.
 *  The mode match includes the closing quote so "dirty-rerun" rows
 *  never alias "dirty". */
BaselineRow
baselineDirty(const std::string &path, int servers)
{
    BaselineRow row;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return row;
    char line[1024];
    char want[64];
    std::snprintf(want, sizeof(want), "\"servers\": %d,", servers);
    while (std::fgets(line, sizeof(line), f)) {
        if (!std::strstr(line, want) ||
            !std::strstr(line, "\"mode\": \"dirty\""))
            continue;
        const char *key = std::strstr(line, "\"decisions_per_s\":");
        if (key)
            row.rate =
                std::atof(key + std::strlen("\"decisions_per_s\":"));
        const char *hkey = std::strstr(line, "\"placement_hash\": \"");
        if (hkey)
            row.hash = std::strtoull(
                hkey + std::strlen("\"placement_hash\": \""), nullptr,
                16);
        row.found = true;
        break;
    }
    std::fclose(f);
    return row;
}

int
runChurnBench(bool smoke, const std::string &out_path,
              const std::string &baseline_path, double max_regression)
{
    struct Point
    {
        int servers;
        bool dirty;
        bool full;
        bool rerun; // dirty run #2: determinism referee at big scales
        int shards = 0; // >0: sharded merge path with K shards
    };
    std::vector<Point> points;
    // Smoke runs the same horizon as the full bench (so its numbers
    // are directly comparable to the committed baseline) but only
    // the 1000-server slice plus a dirty-only 10k leg — seconds
    // instead of minutes.
    const double horizon = 900.0;
    // Both production modes up to 10k; cached is O(N) per call, so
    // at 50k/100k the referee is a second seeded dirty replay that
    // must reproduce the placement hash exactly. full_rescan is
    // tests-only now (the QUASAR_VERIFY shadow oracle and the
    // equivalence tests exercise it), so benches no longer carry a
    // leg for it.
    points.push_back({1000, true, false, false});
    points.push_back({1000, false, false, false});
    if (smoke) {
        points.push_back({10000, true, false, false});
        // Sharded legs: K=1 identity at 1k, K=4 at 10k — both gated
        // below on reproducing the committed dirty placement hashes
        // bit-exactly and staying inside the regression bound.
        points.push_back({1000, true, false, false, 1});
        points.push_back({10000, true, false, false, 4});
    } else {
        points.push_back({5000, true, false, false});
        points.push_back({5000, false, false, false});
        points.push_back({10000, true, false, false});
        points.push_back({10000, false, false, false});
        points.push_back({50000, true, false, false});
        points.push_back({50000, true, false, true});
        points.push_back({100000, true, false, false});
        points.push_back({100000, true, false, true});
        // Sharded merge legs. K=1 proves hash identity with the
        // classic path at 1k; K=4 carries the 10k/50k legs; the 100k
        // K sweep is the scaling-efficiency table (each leg's rate
        // relative to the sharded K=1 leg at the same scale).
        points.push_back({1000, true, false, false, 1});
        points.push_back({10000, true, false, false, 4});
        points.push_back({50000, true, false, false, 4});
        points.push_back({100000, true, false, false, 1});
        points.push_back({100000, true, false, false, 2});
        points.push_back({100000, true, false, false, 4});
        points.push_back({100000, true, false, false, 8});
    }

    bench::banner(smoke ? "churn stream (smoke): dirty vs cached at "
                          "1k, dirty at 10k, sharded K=1/K=4 legs"
                        : "churn stream: dirty vs cached to 10k, "
                          "dirty re-replay to 100k servers, sharded "
                          "merge legs + 100k K sweep");

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"name\": \"churn\",\n  \"smoke\": %s,\n"
                 "  \"horizon_s\": %.0f,\n  \"scales\": [\n",
                 smoke ? "true" : "false", horizon);

    // placement hash per scale from the dirty run: the cached legs,
    // the dirty-rerun legs, and every sharded leg must reproduce it
    // exactly.
    std::vector<std::pair<int, uint64_t>> dirty_hashes;
    // (servers, decisions/s, hash) of every primary dirty leg, for
    // the baseline gates below.
    std::vector<std::tuple<int, double, uint64_t>> dirty_results;
    // (servers, K, decisions/s, hash) of every sharded leg, gated
    // against the committed dirty rows the same way.
    std::vector<std::tuple<int, int, double, uint64_t>>
        sharded_results;
    // decisions/s of the sharded K=1 leg per scale: denominator of
    // the scaling-efficiency column.
    std::vector<std::pair<int, double>> shard_k1_rates;
    bool all_identical = true;
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        ModeMetrics m =
            runMode(p.servers, horizon, p.dirty, p.full, p.shards);
        bool identical = true;
        if (p.dirty && !p.rerun && p.shards == 0) {
            dirty_hashes.emplace_back(p.servers, m.placement_hash);
            dirty_results.emplace_back(p.servers, m.decisions_per_s,
                                       m.placement_hash);
        } else {
            for (const auto &[srv, h] : dirty_hashes)
                if (srv == p.servers)
                    identical = m.placement_hash == h;
            all_identical = all_identical && identical;
        }
        double efficiency = 0.0;
        if (p.shards > 0) {
            sharded_results.emplace_back(p.servers, p.shards,
                                         m.decisions_per_s,
                                         m.placement_hash);
            if (p.shards == 1)
                shard_k1_rates.emplace_back(p.servers,
                                            m.decisions_per_s);
            for (const auto &[srv, r1] : shard_k1_rates)
                if (srv == p.servers && r1 > 0.0)
                    efficiency = m.decisions_per_s / r1;
        }
        std::printf(
            "  %5d servers %-11s: %8.0f decisions/s  (%llu calls)  "
            "depth %.1f/%zu  qos-viol %.3f  done %zu, killed %zu  "
            "%s\n",
            p.servers, modeName(p.dirty, p.full, p.rerun, p.shards),
            m.decisions_per_s, (unsigned long long)m.schedule_calls,
            m.mean_admission_depth, m.max_admission_depth,
            m.qos_violation_rate, m.completed, m.killed,
            identical ? "identical" : "DIVERGED");
        if (p.shards > 0)
            std::printf("        sharded: decision hash %016llx  "
                        "merge commits %llu  efficiency vs K=1 "
                        "%.3f\n",
                        (unsigned long long)m.decision_hash,
                        (unsigned long long)m.merge_commits,
                        efficiency);
        std::printf(
            "        breakdown ms: classify %.3f (profile %.3f)  "
            "schedule %.4f (rank %.4f place %.4f)  adapt %.4f  "
            "tick %.3f\n",
            m.classify_ms, m.profile_ms, m.schedule_ms, m.rank_ms,
            m.place_ms, m.adapt_ms, m.tick_ms);
        std::fprintf(
            out,
            "    {\"servers\": %d, \"mode\": \"%s\", "
            "\"decisions_per_s\": %.1f, \"schedule_calls\": %llu, "
            "\"mean_admission_depth\": %.2f, "
            "\"max_admission_depth\": %zu, "
            "\"qos_violation_rate\": %.4f, "
            "\"completed\": %zu, \"killed\": %zu, "
            "\"placement_hash\": \"%016llx\", \"identical\": %s, "
            "\"classify_ms\": %.4f, \"profile_ms\": %.4f, "
            "\"schedule_ms\": %.5f, \"adapt_ms\": %.5f, "
            "\"rank_ms\": %.5f, \"place_ms\": %.5f, "
            "\"tick_ms\": %.4f",
            p.servers, modeName(p.dirty, p.full, p.rerun, p.shards),
            m.decisions_per_s,
            (unsigned long long)m.schedule_calls,
            m.mean_admission_depth, m.max_admission_depth,
            m.qos_violation_rate, m.completed, m.killed,
            (unsigned long long)m.placement_hash,
            identical ? "true" : "false", m.classify_ms, m.profile_ms,
            m.schedule_ms, m.adapt_ms, m.rank_ms, m.place_ms,
            m.tick_ms);
        if (p.shards > 0) {
            std::fprintf(out,
                         ", \"shards\": %d, "
                         "\"decision_hash\": \"%016llx\"",
                         p.shards,
                         (unsigned long long)m.decision_hash);
            if (efficiency > 0.0)
                std::fprintf(out, ", \"scaling_efficiency\": %.3f",
                             efficiency);
        }
        std::fprintf(out, "}%s\n",
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: scheduler modes (or dirty "
                             "re-replays) diverged on placements "
                             "under churn\n");
        return 1;
    }
    if (!baseline_path.empty()) {
        // Gate every dirty leg whose scale has a committed row:
        // throughput must be within max_regression of the baseline,
        // and the placement hash must reproduce it exactly (seeded
        // stream + deterministic decision path).
        bool any = false;
        for (const auto &[servers, rate, hash] : dirty_results) {
            BaselineRow base = baselineDirty(baseline_path, servers);
            if (!base.found || std::isnan(base.rate) ||
                base.rate <= 0.0)
                continue;
            any = true;
            if (!(rate > base.rate * (1.0 - max_regression))) {
                std::fprintf(stderr,
                             "FAIL: dirty decisions/s at %d servers "
                             "(%.0f) regressed >%.0f%% vs baseline "
                             "%.0f\n",
                             servers, rate, max_regression * 100.0,
                             base.rate);
                return 1;
            }
            if (base.hash != 0 && hash != base.hash) {
                std::fprintf(stderr,
                             "FAIL: dirty placement hash at %d "
                             "servers (%016llx) diverged from the "
                             "committed baseline (%016llx)\n",
                             servers, (unsigned long long)hash,
                             (unsigned long long)base.hash);
                return 1;
            }
            std::printf("gate ok at %d servers: %.0f decisions/s vs "
                        "baseline %.0f (limit -%.0f%%), hash "
                        "reproduced\n",
                        servers, rate, base.rate,
                        max_regression * 100.0);
        }
        // Sharded legs gate against the SAME committed dirty rows:
        // the merge commit's replay contract makes the placement
        // hash bit-identical to the classic path at any K, so a
        // committed hash mismatch means the contract broke.
        for (const auto &[servers, shards, rate, hash] :
             sharded_results) {
            BaselineRow base = baselineDirty(baseline_path, servers);
            if (!base.found || std::isnan(base.rate) ||
                base.rate <= 0.0)
                continue;
            any = true;
            if (base.hash != 0 && hash != base.hash) {
                std::fprintf(
                    stderr,
                    "FAIL: sharded K=%d placement hash at %d "
                    "servers (%016llx) diverged from the committed "
                    "dirty baseline (%016llx)\n",
                    shards, servers, (unsigned long long)hash,
                    (unsigned long long)base.hash);
                return 1;
            }
            if (!(rate > base.rate * (1.0 - max_regression))) {
                std::fprintf(
                    stderr,
                    "FAIL: sharded K=%d decisions/s at %d servers "
                    "(%.0f) regressed >%.0f%% vs the dirty baseline "
                    "%.0f\n",
                    shards, servers, rate, max_regression * 100.0,
                    base.rate);
                return 1;
            }
            std::printf("gate ok sharded K=%d at %d servers: %.0f "
                        "decisions/s vs dirty baseline %.0f, hash "
                        "reproduced\n",
                        shards, servers, rate, base.rate);
        }
        if (!any)
            std::printf("no usable baseline at %s; skipping the "
                        "regression gates\n",
                        baseline_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_churn.json";
    std::string baseline_path;
    double max_regression = 0.25;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--baseline=", 0) == 0)
            baseline_path = arg.substr(11);
        else if (arg.rfind("--max-regression=", 0) == 0)
            max_regression = std::atof(arg.c_str() + 17);
    }
    return runChurnBench(smoke, out_path, baseline_path,
                         max_regression);
}
