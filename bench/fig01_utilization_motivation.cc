/**
 * @file
 * Reproduces paper Fig. 1 (motivation): a production-style cluster
 * managed with reservations + least-loaded placement. We replay a
 * service-heavy workload population (the Twitter cluster "mostly hosts
 * user-facing services") whose reservations follow the paper's
 * Fig. 1d error distribution, over four simulated days, and report:
 *  (a) aggregate CPU used vs reserved,
 *  (b) aggregate memory used vs reserved,
 *  (c) the per-server CPU-utilization CDF per day,
 *  (d) the reserved/used ratio distribution across workloads.
 */

#include <cmath>
#include <map>

#include "baselines/reservation_ll.hh"
#include "bench/common.hh"
#include "driver/scenario.hh"
#include "stats/histogram.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kDay = 86400.0;
constexpr double kDays = 4.0;

} // namespace

int
main()
{
    bench::banner("Fig. 1: utilization of a reservation-managed "
                  "production cluster (motivation)");

    sim::Cluster cluster = sim::Cluster::ec2Cluster();
    workload::WorkloadRegistry registry;
    baselines::ReservationLLManager manager(cluster, registry, 101);
    driver::ScenarioDriver drv(cluster, registry, manager,
                               driver::DriverConfig{.tick_s = 60.0,
                                                    .record_every = 5});

    workload::WorkloadFactory factory{stats::Rng(1)};
    auto &rng = factory.rng();

    // Service-heavy population: long-running user-facing services with
    // diurnal load, plus a long tail of batch work resubmitted daily.
    std::vector<WorkloadId> ids;
    for (int i = 0; i < 320; ++i) {
        std::string name = "svc-" + std::to_string(i);
        double x = rng.uniform();
        Workload w;
        if (x < 0.7) {
            double qps = rng.uniform(60.0, 250.0);
            w = factory.webService(
                name, qps, 0.1,
                std::make_shared<tracegen::DiurnalLoad>(
                    0.2 * qps, qps, kDay,
                    rng.uniform(10.0, 20.0) * 3600.0));
        } else if (x < 0.9) {
            double qps = rng.uniform(1e4, 3e4);
            w = factory.memcachedService(
                name, qps, 200e-6, rng.uniform(10.0, 30.0),
                std::make_shared<tracegen::DiurnalLoad>(
                    0.25 * qps, qps, kDay,
                    rng.uniform(10.0, 20.0) * 3600.0));
            // Small caches sized for the small-instance fleet.
            w.truth.mem_demand_gb = rng.uniform(3.0, 8.0);
        } else {
            double qps = rng.uniform(1e3, 4e3);
            w = factory.cassandraService(
                name, qps, 30e-3, rng.uniform(80.0, 200.0),
                std::make_shared<tracegen::DiurnalLoad>(
                    0.3 * qps, qps, kDay,
                    rng.uniform(10.0, 20.0) * 3600.0));
            w.truth.mem_demand_gb = rng.uniform(3.0, 8.0);
        }
        WorkloadId id = registry.add(w);
        ids.push_back(id);
        drv.addArrival(id, rng.uniform(1.0, 1800.0));
    }
    // Batch tail: submitted throughout each day.
    // The batch tail is single-app tasks with fixed (single) thread
    // counts: they cannot exploit an over-sized reservation, which is
    // exactly where the paper's reserved-vs-used gap comes from.
    static const char *families[] = {"spec-int", "spec-fp", "spec-int",
                                     "spec-fp", "spec-int", "spec-fp"};
    for (int d = 0; d < int(kDays); ++d) {
        for (int i = 0; i < 220; ++i) {
            Workload w = factory.singleNodeJob(
                "batch-" + std::to_string(d) + "-" + std::to_string(i),
                families[rng.uniformInt(0, 5)]);
            w.total_work *= 8.0; // hour-scale batch tasks
            WorkloadId id = registry.add(w);
            ids.push_back(id);
            drv.addArrival(id, d * kDay + rng.uniform(0.0, kDay * 0.9));
        }
    }

    // Track each workload's total used cores (across all its placed
    // nodes) for panel (d); unplaced reservation nodes count as zero
    // usage, exactly like reserved-but-idle capacity in production.
    std::map<WorkloadId, stats::Accumulator> used_cores;
    drv.setTickHook([&](double t) {
        if (std::fmod(t, 600.0) > 60.5)
            return;
        std::map<WorkloadId, double> total;
        for (size_t s = 0; s < cluster.size(); ++s)
            for (const sim::TaskShare &task :
                 cluster.server(ServerId(s)).tasks())
                total[task.workload] += task.cores_used;
        for (const auto &[id, cores] : total)
            used_cores[id].add(cores);
    });

    drv.run(kDays * kDay);

    bench::section("Fig. 1a: aggregate CPU, used vs reserved (% of "
                   "capacity, 12 windows over 4 days)");
    std::printf("%-10s", "used");
    for (int i = 1; i <= 12; ++i)
        std::printf(" %4.0f%%",
                    100.0 * drv.aggCpuUsed().meanOver(
                                (i - 1) * kDays * kDay / 12.0,
                                i * kDays * kDay / 12.0));
    std::printf("\n%-10s", "reserved");
    for (int i = 1; i <= 12; ++i)
        std::printf(" %4.0f%%",
                    100.0 * drv.aggCpuReserved().meanOver(
                                (i - 1) * kDays * kDay / 12.0,
                                i * kDays * kDay / 12.0));
    std::printf("\n");

    bench::section("Fig. 1b: aggregate memory, used(=allocated) vs "
                   "capacity");
    std::printf("%-10s", "reserved");
    for (int i = 1; i <= 12; ++i)
        std::printf(" %4.0f%%",
                    100.0 * drv.aggMemUsed().meanOver(
                                (i - 1) * kDays * kDay / 12.0,
                                i * kDays * kDay / 12.0));
    std::printf("\n");

    bench::section("Fig. 1c: CDF of per-server mean CPU utilization, "
                   "per day");
    std::printf("%-8s %6s %6s %6s %6s %6s\n", "day", "p10", "p30",
                "p50", "p70", "p90");
    for (int d = 0; d < int(kDays); ++d) {
        auto means = drv.cpuUsedGrid().windowMeans(d * kDay,
                                                   (d + 1) * kDay);
        stats::Samples s;
        s.addAll(means);
        std::printf("day %-4d %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                    d + 1, 100 * s.percentile(10), 100 * s.percentile(30),
                    100 * s.percentile(50), 100 * s.percentile(70),
                    100 * s.percentile(90));
    }

    bench::section("Fig. 1d: reserved/used ratio across workloads");
    stats::Samples ratios;
    size_t under = 0, right = 0, over = 0;
    for (WorkloadId id : ids) {
        auto it = used_cores.find(id);
        const baselines::Reservation *res = manager.reservationFor(id);
        if (it == used_cores.end() || !res || it->second.mean() <= 0.0)
            continue;
        // Total reserved (all nodes) vs mean total used cores.
        double reserved = double(res->cores_per_node) *
                          double(res->nodes);
        double ratio = reserved / it->second.mean();
        ratios.add(ratio);
        if (ratio < 0.9)
            ++under;
        else if (ratio <= 1.5)
            ++right;
        else
            ++over;
    }
    double total = double(under + right + over);
    std::printf("under-sized (<0.9x): %5.1f%%   right-sized: %5.1f%%   "
                "over-sized (>1.5x): %5.1f%%\n",
                100.0 * double(under) / total,
                100.0 * double(right) / total,
                100.0 * double(over) / total);
    std::printf("%s", stats::formatCdfTable(ratios.values(),
                                            "reserved/used ratio")
                          .c_str());
    std::printf("(note: our cgroup model hard-caps usage at the "
                "reservation, so the paper's under-sized tail — tasks "
                "bursting past their reservation on idle cores — "
                "cannot appear; under-reserved workloads here show up "
                "as ratio ~1 plus missed targets instead)\n");

    std::printf("\npaper reference (Twitter/Mesos production cluster): "
                "aggregate CPU use <20%% with reservations up to 80%%; "
                "most servers below 50%% utilization; ~70%% of "
                "workloads over-reserve (up to 10x), ~20%% "
                "under-reserve.\n");
    return 0;
}
