/**
 * @file
 * Reproduces paper Fig. 8: a HotCRP-style webserving workload with a
 * 100 ms per-request latency constraint under flat, fluctuating, and
 * spiking traffic, managed by Quasar or by an auto-scaling system
 * (add a least-loaded fixed-size instance above 70% utilization).
 * Spare capacity runs best-effort single-node tasks. Panels:
 *  (a/b/d) achieved QPS vs target for each load shape,
 *  (c) cores allocated to the service vs best-effort (Quasar,
 *      fluctuating load),
 *  (e) fraction of queries meeting the latency QoS around the spike.
 */

#include <cmath>

#include "baselines/autoscale.hh"
#include "bench/common.hh"
#include "core/manager.hh"
#include "driver/scenario.hh"

using namespace quasar;
using workload::Workload;

namespace
{

constexpr double kHorizon = 24000.0; // ~400 minutes

struct ServiceResult
{
    stats::TimeSeries offered;
    stats::TimeSeries served_ok;
    stats::TimeSeries qos_fraction;
    stats::TimeSeries service_cores;
    stats::TimeSeries be_cores;
    double mean_tracking = 0.0;    ///< served-in-QoS / offered.
    double qos_met_fraction = 0.0; ///< load-weighted QoS fraction.
    double be_slowdown = 0.0;      ///< mean runtime vs solo best.
    size_t be_finished = 0;
};

tracegen::LoadPatternPtr
makeLoad(const std::string &shape)
{
    if (shape == "flat")
        return std::make_shared<tracegen::FlatLoad>(110.0);
    if (shape == "fluctuating")
        return std::make_shared<tracegen::FluctuatingLoad>(280.0, 180.0,
                                                           7000.0);
    // A sharp spike: 1-minute ramp, 40 minutes at the peak.
    return std::make_shared<tracegen::SpikeLoad>(120.0, 460.0, 12000.0,
                                                 60.0, 2400.0);
}

/** Solo-optimal completion for a best-effort task. */
double
soloBest(const Workload &w, const std::vector<sim::Platform> &catalog)
{
    double best = 0.0;
    for (const sim::Platform &p : catalog)
        for (const auto &cfg : workload::scaleUpGrid(p, w.type))
            best = std::max(best, w.truth.nodeRateQuiet(p, cfg));
    return w.total_work / best;
}

template <typename MakeManager>
ServiceResult
runShape(const std::string &shape, uint64_t seed, MakeManager make)
{
    sim::Cluster cluster = sim::Cluster::localCluster();
    workload::WorkloadRegistry registry;
    auto manager = make(cluster, registry);
    driver::ScenarioDriver drv(cluster, registry, *manager,
                               driver::DriverConfig{.tick_s = 10.0,
                                                    .record_every = 6});

    workload::WorkloadFactory factory{stats::Rng(seed)};
    Workload hotcrp = factory.webService("hotcrp", 500.0, 0.1,
                                         makeLoad(shape));
    WorkloadId svc = registry.add(hotcrp);
    drv.addArrival(svc, 1.0);

    std::vector<WorkloadId> be_ids;
    std::vector<double> be_solo;
    // Best-effort supply sized below cluster capacity: runtimes then
    // reflect placement quality rather than queueing delay.
    for (int i = 0; i < int(kHorizon / 45.0); ++i) {
        Workload be = factory.bestEffortJob("be-" + std::to_string(i));
        be.total_work *= 3.0;
        be_solo.push_back(soloBest(be, cluster.catalog()));
        WorkloadId id = registry.add(be);
        be_ids.push_back(id);
        drv.addArrival(id, 45.0 * double(i + 1));
    }

    ServiceResult res;
    drv.setTickHook([&](double t) {
        if (std::fmod(t, 60.0) > 10.5)
            return;
        int svc_cores = 0, be_cores = 0;
        for (size_t s = 0; s < cluster.size(); ++s) {
            for (const sim::TaskShare &task :
                 cluster.server(ServerId(s)).tasks()) {
                if (task.workload == svc)
                    svc_cores += task.cores;
                else if (task.best_effort)
                    be_cores += task.cores;
            }
        }
        res.service_cores.record(t, svc_cores);
        res.be_cores.record(t, be_cores);
    });

    drv.run(kHorizon);

    const driver::ServiceTrace *trace = drv.serviceTrace(svc);
    double track_sum = 0.0, qos_w = 0.0, offered_sum = 0.0;
    for (size_t i = 0; i < trace->offered_qps.size(); ++i) {
        double off = trace->offered_qps.valueAt(i);
        double ok = trace->served_ok_qps.valueAt(i);
        res.offered.record(trace->offered_qps.timeAt(i), off);
        res.served_ok.record(trace->served_ok_qps.timeAt(i), ok);
        res.qos_fraction.record(trace->qos_fraction.timeAt(i),
                                trace->qos_fraction.valueAt(i));
        if (off > 0.0) {
            track_sum += std::min(ok / off, 1.0) * off;
            qos_w += trace->qos_fraction.valueAt(i) * off;
            offered_sum += off;
        }
    }
    res.mean_tracking = offered_sum > 0 ? track_sum / offered_sum : 0.0;
    res.qos_met_fraction = offered_sum > 0 ? qos_w / offered_sum : 0.0;

    double slow_sum = 0.0;
    for (size_t i = 0; i < be_ids.size(); ++i) {
        const Workload &w = registry.get(be_ids[i]);
        if (!w.completed)
            continue;
        double run = w.completion_time - w.arrival_time;
        slow_sum += (run - be_solo[i]) / be_solo[i];
        ++res.be_finished;
    }
    res.be_slowdown =
        res.be_finished ? slow_sum / double(res.be_finished) : 0.0;
    return res;
}

void
printSeries(const char *label, const ServiceResult &r, double step_s)
{
    std::printf("%-8s", label);
    for (double t = step_s; t <= kHorizon; t += step_s)
        std::printf(" %5.0f", r.served_ok.meanOver(t - step_s, t));
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Fig. 8: HotCRP low-latency service, Quasar vs "
                  "auto-scaling (flat / fluctuating / spike loads)");

    workload::WorkloadFactory seed_factory{stats::Rng(808)};
    auto offline = bench::standardSeeds(seed_factory, 4);

    auto make_autoscale = [&](auto &c, auto &r) {
        return std::make_unique<baselines::AutoScaleManager>(
            c, r, baselines::AutoScaleConfig{}, 333);
    };
    auto make_quasar = [&](auto &c, auto &r) {
        core::QuasarConfig cfg;
        cfg.seed = 880;
        auto m = std::make_unique<core::QuasarManager>(c, r, cfg);
        m->seedOffline(offline, 0.0);
        return m;
    };

    const double step = kHorizon / 10.0;
    for (const char *shape : {"flat", "fluctuating", "spike"}) {
        bench::section(std::string(shape) +
                       " load: served QPS within QoS (10 windows)");
        ServiceResult as = runShape(shape, 1808, make_autoscale);
        ServiceResult qs = runShape(shape, 1808, make_quasar);
        std::printf("%-8s", "target");
        for (double t = step; t <= kHorizon; t += step)
            std::printf(" %5.0f", as.offered.meanOver(t - step, t));
        std::printf("\n");
        printSeries("autoscl", as, step);
        printSeries("quasar", qs, step);
        std::printf("load tracking: autoscale %.1f%%, quasar %.1f%% of "
                    "offered queries served within QoS\n",
                    100.0 * as.mean_tracking, 100.0 * qs.mean_tracking);
        std::printf("queries meeting QoS: autoscale %.1f%%, quasar "
                    "%.1f%%\n",
                    100.0 * as.qos_met_fraction,
                    100.0 * qs.qos_met_fraction);
        std::printf("best-effort: autoscale %zu done (+%.0f%% vs "
                    "solo-best), quasar %zu done (+%.0f%%)\n",
                    as.be_finished, 100.0 * as.be_slowdown,
                    qs.be_finished, 100.0 * qs.be_slowdown);

        if (std::string(shape) == "fluctuating") {
            bench::section("Fig. 8c: core allocation under Quasar "
                           "(fluctuating load)");
            std::printf("%-8s", "hotcrp");
            for (double t = step; t <= kHorizon; t += step)
                std::printf(" %5.0f",
                            qs.service_cores.meanOver(t - step, t));
            std::printf("\n%-8s", "b.e.");
            for (double t = step; t <= kHorizon; t += step)
                std::printf(" %5.0f",
                            qs.be_cores.meanOver(t - step, t));
            std::printf("\n");
        }
    }

    std::printf("\npaper reference: Quasar tracks target QPS within "
                "~4%% and meets latency QoS for nearly all requests; "
                "auto-scaling drops ~18%% of QPS under fluctuation and "
                "misses QoS for >20%% of requests around the spike; "
                "best-effort tasks finish within 5%% of optimal under "
                "Quasar vs ~24%% with auto-scale.\n");
    return 0;
}
