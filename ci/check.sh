#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass, suitable for CI.
#
#   1. Configure + build the default tree and run the full ctest
#      suite (the repo's tier-1 gate).
#   2. Build the test binary and the fault-recovery bench with
#      -fsanitize=address,undefined (QUASAR_SANITIZE=ON) and run
#      both; any sanitizer report fails the script.
#   3. Build Release and run the decision-path benchmark: proves the
#      incremental scheduler picks identical placements to the
#      full-rescan path and fails if the 200-server schedule-call
#      mean regresses more than 25% against the committed
#      BENCH_decision_path.json baseline. The fresh numbers are
#      written back to that file so improvements can be committed.
#   4. Run the churn-stream smoke (Release): the full bench's
#      1000-server slice — a seeded open-loop arrival/departure/fault
#      stream through all three scheduler modes. Fails on any
#      placement divergence
#      between modes, or if the dirty-set mode's decisions/sec drops
#      more than 25% below the committed BENCH_churn.json baseline
#      (refresh that file with `bench/churn` — no --smoke — when the
#      improvement is intentional).
#
# Usage: ci/check.sh [jobs]   (defaults to nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizer: ASan+UBSan build of tests + fault bench =="
cmake -B build-asan -S . -DQUASAR_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j "$JOBS" --target quasar_tests fault_recovery
./build-asan/tests/quasar_tests
./build-asan/bench/fault_recovery

echo "== decision-path: Release bench + regression gate =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target micro_overheads
BASELINE_ARGS=()
if [ -f BENCH_decision_path.json ]; then
    BASELINE_ARGS=(--baseline=BENCH_decision_path.json
                   --max-regression=0.25)
fi
./build-release/bench/micro_overheads --decision-path \
    --out=BENCH_decision_path.json "${BASELINE_ARGS[@]}"

echo "== churn smoke: mode equivalence + throughput gate =="
cmake --build build-release -j "$JOBS" --target churn
CHURN_BASELINE_ARGS=()
if [ -f BENCH_churn.json ]; then
    CHURN_BASELINE_ARGS=(--baseline=BENCH_churn.json
                         --max-regression=0.25)
fi
./build-release/bench/churn --smoke --out=build-release/churn_smoke.json \
    "${CHURN_BASELINE_ARGS[@]}"

echo "== all checks passed =="
