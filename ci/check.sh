#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass, suitable for CI.
#
#   1. Configure + build the default tree and run the full ctest
#      suite (the repo's tier-1 gate).
#   2. Build the test binary, the fault-recovery bench and the
#      quasar-lint analyzer with -fsanitize=address,undefined
#      (QUASAR_SANITIZE=address; ON is a back-compat alias) and run
#      all three (the analyzer runs its fixture self-test); any
#      sanitizer report fails the script. Then build the tests again
#      with -fsanitize=thread (QUASAR_SANITIZE=thread) and run the
#      shard + change-journal suites: the per-shard refresh/propose
#      phases and the journal's multi-reader cursor contract are the
#      repo's only concurrency, and TSan proves them race-free with
#      real threads (ShardConfig.threads forces a pool even on
#      single-core hosts).
#   3. Build Release and run the decision-path benchmark: proves the
#      incremental scheduler picks identical placements to the
#      full-rescan path and fails if the 200-server schedule-call
#      mean regresses more than 25% against the committed
#      BENCH_decision_path.json baseline. The fresh numbers are
#      written back to that file so improvements can be committed.
#   4. Run the churn-stream smoke (Release): the full bench's
#      1000-server slice (dirty vs cached) plus a dirty-only
#      larger-scale leg at 10000 servers — a seeded open-loop
#      arrival/departure/fault stream — and two sharded merge legs
#      (K=1 at 1k, K=4 at 10k, DESIGN.md §14). Fails on any
#      placement divergence between modes or between a sharded leg
#      and its scale's dirty leg, if any gated leg's decisions/sec
#      drops more than 25% below the committed BENCH_churn.json
#      baseline, or if any placement hash (sharded legs included —
#      the merge commit is bit-identical to the classic path at any
#      K) diverges from the committed one (the stream is seeded and
#      the decision path deterministic, so the hash must reproduce
#      in-container; refresh the file with `bench/churn` — no
#      --smoke — when a change is intentional).
#   5. Run the trace-replay smoke (Release): both checked-in trace
#      fixtures (Google task-events, Azure vmtable) parsed, mapped,
#      and replayed through all three scheduler modes plus a
#      re-replay. Fails on any placement-hash divergence between
#      modes, on an unstable re-replay, or if either parser's
#      diagnostic counts drift from the fixtures' known malformed-row
#      counts (9 google / 7 azure — see tools/gen_trace_fixtures.py).
#   6. Run the overload-control smoke (Release): diurnal + flash-
#      crowd traffic at 200 servers, controller off vs on. Fails if
#      the controller's shedding/scaling decisions diverge across
#      scheduler index modes or a re-replay (placement AND decision
#      hashes), if any leg's completed + departed + shed + active
#      does not equal its arrivals, if controller-on does not beat
#      controller-off on the crowd-window QoS-violation rate, or if
#      that rate regresses more than 0.05 (absolute) above the
#      committed BENCH_overload.json (refresh with `bench/overload`
#      — no --smoke — when a shift is intentional).
#   7. Run the topology smoke (Release): the cache-thrashed-socket
#      scenario on 2-socket machines, socket-aware vs topology-blind
#      homing (DESIGN.md §13). Fails if the aware leg's placement
#      hash is not reproduced bit-identically by the cached-index and
#      replay legs, if socket-aware does not beat topology-blind on
#      the services' QoS-violation rate, or if that rate regresses
#      more than 0.05 (absolute) above the committed
#      BENCH_topology.json (refresh with `bench/topology --smoke`
#      when a shift is intentional).
#   8. Static analysis + verification soak:
#      a. tools/quasar-lint (the structure-aware analyzer: token
#         rules plus mutation-journaling, decision-purity and
#         layering/include-cycle — see DESIGN.md §10) over src/
#         bench/ tests/ examples/ tools/ in --json mode against the
#         committed shrink-only baseline: any NEW finding fails, and
#         any baseline entry that no longer fires fails too. The
#         fixture self-test runs first.
#      b. clang-tidy with the repo .clang-tidy over src/, reading
#         real flags/defines from build/compile_commands.json
#         (CMAKE_EXPORT_COMPILE_COMMANDS is on by default) — gated on
#         clang-tidy being installed (the reference image ships gcc
#         only; the stage is skipped with a notice when absent).
#      c. A -DQUASAR_VERIFY=ON -DQUASAR_WERROR=ON build running the
#         chaos (test_faults) and churn-equivalence suites plus the
#         verify counters tests and the per-mutator death-test suite
#         generated from src/verify/journaled_mutators.def: every
#         dirty_set/cached decision is shadow-checked against
#         full_rescan, every driver tick sweeps cluster invariants,
#         every listed mutator provably trips the index audit when
#         unjournaled, and any warning is an error.
#
# Usage: ci/check.sh [jobs]   (defaults to nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizer: ASan+UBSan build of tests + fault bench + lint =="
cmake -B build-asan -S . -DQUASAR_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j "$JOBS" \
      --target quasar_tests fault_recovery quasar_lint
./build-asan/tests/quasar_tests
./build-asan/bench/fault_recovery
./build-asan/tools/quasar_lint --self-test \
    --fixture=tools/quasar-lint/fixture

echo "== sanitizer: TSan build of the shard + journal suites =="
cmake -B build-tsan -S . -DQUASAR_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-tsan -j "$JOBS" --target quasar_tests
./build-tsan/tests/quasar_tests \
    --gtest_filter='Shard.*:ChangeJournal.*'

echo "== decision-path: Release bench + regression gate =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target micro_overheads
BASELINE_ARGS=()
if [ -f BENCH_decision_path.json ]; then
    BASELINE_ARGS=(--baseline=BENCH_decision_path.json
                   --max-regression=0.25)
fi
./build-release/bench/micro_overheads --decision-path \
    --out=BENCH_decision_path.json "${BASELINE_ARGS[@]}"

echo "== churn smoke: mode + sharded equivalence, throughput/hash gates (1k + 10k) =="
cmake --build build-release -j "$JOBS" --target churn
CHURN_BASELINE_ARGS=()
if [ -f BENCH_churn.json ]; then
    CHURN_BASELINE_ARGS=(--baseline=BENCH_churn.json
                         --max-regression=0.25)
fi
./build-release/bench/churn --smoke --out=build-release/churn_smoke.json \
    "${CHURN_BASELINE_ARGS[@]}"

echo "== trace-replay smoke: fixture ingest + mode equivalence =="
cmake --build build-release -j "$JOBS" --target trace_replay
./build-release/bench/trace_replay --smoke \
    --out=build-release/trace_replay_smoke.json

echo "== overload smoke: controller replay + QoS gates =="
cmake --build build-release -j "$JOBS" --target overload
OVERLOAD_BASELINE_ARGS=()
if [ -f BENCH_overload.json ]; then
    OVERLOAD_BASELINE_ARGS=(--baseline=BENCH_overload.json
                            --max-regression=0.05)
fi
./build-release/bench/overload --smoke \
    --out=build-release/overload_smoke.json \
    "${OVERLOAD_BASELINE_ARGS[@]}"

echo "== topology smoke: socket-aware QoS + replay-hash gates =="
cmake --build build-release -j "$JOBS" --target topology
TOPOLOGY_BASELINE_ARGS=()
if [ -f BENCH_topology.json ]; then
    TOPOLOGY_BASELINE_ARGS=(--baseline=BENCH_topology.json
                            --max-regression=0.05)
fi
./build-release/bench/topology --smoke \
    --out=build-release/topology_smoke.json \
    "${TOPOLOGY_BASELINE_ARGS[@]}"

echo "== lint: structure-aware analyzer vs committed baseline =="
cmake --build build -j "$JOBS" --target quasar_lint lint_analyzer_tests
./build/tools/quasar_lint --self-test --fixture=tools/quasar-lint/fixture
./build/tools/lint_analyzer_tests
# The baseline is shrink-only: fresh findings fail, and so do stale
# entries (fix the code or shrink the baseline — never grow it).
./build/tools/quasar_lint --json \
    --baseline=tools/quasar-lint/baseline.json \
    src bench tests examples tools

echo "== clang-tidy: curated .clang-tidy over src/ =="
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f build/compile_commands.json ]; then
        echo "build/compile_commands.json missing despite" \
             "CMAKE_EXPORT_COMPILE_COMMANDS; failing" >&2
        exit 1
    fi
    find src -name '*.cc' -print0 |
        xargs -0 -P "$JOBS" -n 8 clang-tidy -p build --quiet
else
    echo "clang-tidy not installed; skipping (config kept in .clang-tidy)"
fi

echo "== verify soak: QUASAR_VERIFY+QUASAR_WERROR chaos + churn suites =="
cmake -B build-verify -S . -DQUASAR_VERIFY=ON -DQUASAR_WERROR=ON \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-verify -j "$JOBS" --target quasar_tests
# Chaos suite: every fault/recovery path with per-tick invariant
# sweeps; churn equivalence: all three scheduler modes bit-identical
# while the shadow oracle re-checks each incremental decision; the
# Verify suite asserts the oracle actually ran; the Trace* and
# HostingIndex suites replay the fixtures under the oracle so every
# replayed placement and the maintained hosting index are
# shadow-checked tick by tick; the Overload*/ScalingPolicy/
# AdmissionQueue suites run the shed/brownout/autoscale paths
# (including the 20-seed replay sweep) under the same sweeps; the
# Topology*/Socket* suites cover the NUMA descriptor, per-socket
# ledger conservation (incl. the desynced-ledger death test, which
# only arms in this QUASAR_VERIFY build), socket selection, and the
# flat-topology replay-equivalence sweep; the Shard suite runs the
# sharded decision path with every merge/optimistic decision checked
# against the whole-cluster (resp. per-shard) shadow oracle plus the
# sampled cross-shard conservation sweep.
./build-verify/tests/quasar_tests \
    --gtest_filter='FaultRecovery.*:FaultInjector.*:Chaos.*:ServerHealth.*:AdmissionRetry.*:DecisionPath.*:ChangeJournal.*:RankingOrder.*:Verify.*:MutatorDeathSync.*:Trace*.*:ChurnClosedLoop.*:HostingIndex.*:Overload*.*:ScalingPolicy.*:AdmissionQueue.*:Topology*.*:Socket*.*:Shard.*'

echo "== all checks passed =="
