#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass, suitable for CI.
#
#   1. Configure + build the default tree and run the full ctest
#      suite (the repo's tier-1 gate).
#   2. Build the test binary and the fault-recovery bench with
#      -fsanitize=address,undefined (QUASAR_SANITIZE=ON) and run
#      both; any sanitizer report fails the script.
#
# Usage: ci/check.sh [jobs]   (defaults to nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizer: ASan+UBSan build of tests + fault bench =="
cmake -B build-asan -S . -DQUASAR_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j "$JOBS" --target quasar_tests fault_recovery
./build-asan/tests/quasar_tests
./build-asan/bench/fault_recovery

echo "== all checks passed =="
