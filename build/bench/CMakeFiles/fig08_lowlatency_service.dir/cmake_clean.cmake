file(REMOVE_RECURSE
  "CMakeFiles/fig08_lowlatency_service.dir/fig08_lowlatency_service.cc.o"
  "CMakeFiles/fig08_lowlatency_service.dir/fig08_lowlatency_service.cc.o.d"
  "fig08_lowlatency_service"
  "fig08_lowlatency_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_lowlatency_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
