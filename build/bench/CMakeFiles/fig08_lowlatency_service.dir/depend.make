# Empty dependencies file for fig08_lowlatency_service.
# This may be replaced when dependencies are built.
