# Empty dependencies file for fig02_workload_sensitivity.
# This may be replaced when dependencies are built.
