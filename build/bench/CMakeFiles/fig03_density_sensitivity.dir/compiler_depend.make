# Empty compiler generated dependencies file for fig03_density_sensitivity.
# This may be replaced when dependencies are built.
