file(REMOVE_RECURSE
  "CMakeFiles/fig03_density_sensitivity.dir/fig03_density_sensitivity.cc.o"
  "CMakeFiles/fig03_density_sensitivity.dir/fig03_density_sensitivity.cc.o.d"
  "fig03_density_sensitivity"
  "fig03_density_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_density_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
