file(REMOVE_RECURSE
  "CMakeFiles/fig09_stateful_services.dir/fig09_stateful_services.cc.o"
  "CMakeFiles/fig09_stateful_services.dir/fig09_stateful_services.cc.o.d"
  "fig09_stateful_services"
  "fig09_stateful_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_stateful_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
