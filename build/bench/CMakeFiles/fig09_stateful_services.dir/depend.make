# Empty dependencies file for fig09_stateful_services.
# This may be replaced when dependencies are built.
