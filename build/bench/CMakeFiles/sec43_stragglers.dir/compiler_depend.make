# Empty compiler generated dependencies file for sec43_stragglers.
# This may be replaced when dependencies are built.
