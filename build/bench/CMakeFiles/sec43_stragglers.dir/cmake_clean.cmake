file(REMOVE_RECURSE
  "CMakeFiles/sec43_stragglers.dir/sec43_stragglers.cc.o"
  "CMakeFiles/sec43_stragglers.dir/sec43_stragglers.cc.o.d"
  "sec43_stragglers"
  "sec43_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
