file(REMOVE_RECURSE
  "CMakeFiles/fig05_single_batch.dir/fig05_single_batch.cc.o"
  "CMakeFiles/fig05_single_batch.dir/fig05_single_batch.cc.o.d"
  "fig05_single_batch"
  "fig05_single_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_single_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
