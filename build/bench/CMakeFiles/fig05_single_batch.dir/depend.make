# Empty dependencies file for fig05_single_batch.
# This may be replaced when dependencies are built.
