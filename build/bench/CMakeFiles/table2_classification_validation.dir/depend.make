# Empty dependencies file for table2_classification_validation.
# This may be replaced when dependencies are built.
