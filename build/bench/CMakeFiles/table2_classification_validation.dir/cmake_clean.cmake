file(REMOVE_RECURSE
  "CMakeFiles/table2_classification_validation.dir/table2_classification_validation.cc.o"
  "CMakeFiles/table2_classification_validation.dir/table2_classification_validation.cc.o.d"
  "table2_classification_validation"
  "table2_classification_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_classification_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
