file(REMOVE_RECURSE
  "CMakeFiles/sec41_phase_detection.dir/sec41_phase_detection.cc.o"
  "CMakeFiles/sec41_phase_detection.dir/sec41_phase_detection.cc.o.d"
  "sec41_phase_detection"
  "sec41_phase_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_phase_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
