# Empty compiler generated dependencies file for sec41_phase_detection.
# This may be replaced when dependencies are built.
