file(REMOVE_RECURSE
  "CMakeFiles/micro_overheads.dir/micro_overheads.cc.o"
  "CMakeFiles/micro_overheads.dir/micro_overheads.cc.o.d"
  "micro_overheads"
  "micro_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
