# Empty dependencies file for sec44_extensions.
# This may be replaced when dependencies are built.
