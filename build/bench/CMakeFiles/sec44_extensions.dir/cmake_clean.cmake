file(REMOVE_RECURSE
  "CMakeFiles/sec44_extensions.dir/sec44_extensions.cc.o"
  "CMakeFiles/sec44_extensions.dir/sec44_extensions.cc.o.d"
  "sec44_extensions"
  "sec44_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
