file(REMOVE_RECURSE
  "CMakeFiles/fig06_multibatch.dir/fig06_multibatch.cc.o"
  "CMakeFiles/fig06_multibatch.dir/fig06_multibatch.cc.o.d"
  "fig06_multibatch"
  "fig06_multibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_multibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
