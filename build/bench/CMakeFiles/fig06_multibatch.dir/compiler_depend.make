# Empty compiler generated dependencies file for fig06_multibatch.
# This may be replaced when dependencies are built.
