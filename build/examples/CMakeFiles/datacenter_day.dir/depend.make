# Empty dependencies file for datacenter_day.
# This may be replaced when dependencies are built.
