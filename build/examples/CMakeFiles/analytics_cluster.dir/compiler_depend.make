# Empty compiler generated dependencies file for analytics_cluster.
# This may be replaced when dependencies are built.
