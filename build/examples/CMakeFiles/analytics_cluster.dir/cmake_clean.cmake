file(REMOVE_RECURSE
  "CMakeFiles/analytics_cluster.dir/analytics_cluster.cpp.o"
  "CMakeFiles/analytics_cluster.dir/analytics_cluster.cpp.o.d"
  "analytics_cluster"
  "analytics_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
