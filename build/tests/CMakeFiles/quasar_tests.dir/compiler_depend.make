# Empty compiler generated dependencies file for quasar_tests.
# This may be replaced when dependencies are built.
