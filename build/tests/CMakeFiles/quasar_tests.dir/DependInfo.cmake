
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/quasar_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_classifier.cc" "tests/CMakeFiles/quasar_tests.dir/test_classifier.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_classifier.cc.o.d"
  "/root/repo/tests/test_core_runtime.cc" "tests/CMakeFiles/quasar_tests.dir/test_core_runtime.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_core_runtime.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/quasar_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/quasar_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_headlines.cc" "tests/CMakeFiles/quasar_tests.dir/test_headlines.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_headlines.cc.o.d"
  "/root/repo/tests/test_interference.cc" "tests/CMakeFiles/quasar_tests.dir/test_interference.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_interference.cc.o.d"
  "/root/repo/tests/test_linalg.cc" "tests/CMakeFiles/quasar_tests.dir/test_linalg.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_linalg.cc.o.d"
  "/root/repo/tests/test_manager.cc" "tests/CMakeFiles/quasar_tests.dir/test_manager.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_manager.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/quasar_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_profiling.cc" "tests/CMakeFiles/quasar_tests.dir/test_profiling.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_profiling.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/quasar_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/quasar_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/quasar_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/quasar_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/quasar_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_tracegen.cc" "tests/CMakeFiles/quasar_tests.dir/test_tracegen.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_tracegen.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/quasar_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/quasar_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quasar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
