# Empty dependencies file for quasar.
# This may be replaced when dependencies are built.
