
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/autoscale.cc" "src/CMakeFiles/quasar.dir/baselines/autoscale.cc.o" "gcc" "src/CMakeFiles/quasar.dir/baselines/autoscale.cc.o.d"
  "/root/repo/src/baselines/framework_scheduler.cc" "src/CMakeFiles/quasar.dir/baselines/framework_scheduler.cc.o" "gcc" "src/CMakeFiles/quasar.dir/baselines/framework_scheduler.cc.o.d"
  "/root/repo/src/baselines/paragon.cc" "src/CMakeFiles/quasar.dir/baselines/paragon.cc.o" "gcc" "src/CMakeFiles/quasar.dir/baselines/paragon.cc.o.d"
  "/root/repo/src/baselines/reservation_ll.cc" "src/CMakeFiles/quasar.dir/baselines/reservation_ll.cc.o" "gcc" "src/CMakeFiles/quasar.dir/baselines/reservation_ll.cc.o.d"
  "/root/repo/src/core/admission.cc" "src/CMakeFiles/quasar.dir/core/admission.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/admission.cc.o.d"
  "/root/repo/src/core/classifier.cc" "src/CMakeFiles/quasar.dir/core/classifier.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/classifier.cc.o.d"
  "/root/repo/src/core/estimate.cc" "src/CMakeFiles/quasar.dir/core/estimate.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/estimate.cc.o.d"
  "/root/repo/src/core/manager.cc" "src/CMakeFiles/quasar.dir/core/manager.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/manager.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/CMakeFiles/quasar.dir/core/monitor.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/monitor.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/CMakeFiles/quasar.dir/core/predictor.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/predictor.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/quasar.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/straggler.cc" "src/CMakeFiles/quasar.dir/core/straggler.cc.o" "gcc" "src/CMakeFiles/quasar.dir/core/straggler.cc.o.d"
  "/root/repo/src/driver/scenario.cc" "src/CMakeFiles/quasar.dir/driver/scenario.cc.o" "gcc" "src/CMakeFiles/quasar.dir/driver/scenario.cc.o.d"
  "/root/repo/src/interference/microbench.cc" "src/CMakeFiles/quasar.dir/interference/microbench.cc.o" "gcc" "src/CMakeFiles/quasar.dir/interference/microbench.cc.o.d"
  "/root/repo/src/interference/profile.cc" "src/CMakeFiles/quasar.dir/interference/profile.cc.o" "gcc" "src/CMakeFiles/quasar.dir/interference/profile.cc.o.d"
  "/root/repo/src/interference/source.cc" "src/CMakeFiles/quasar.dir/interference/source.cc.o" "gcc" "src/CMakeFiles/quasar.dir/interference/source.cc.o.d"
  "/root/repo/src/linalg/completion.cc" "src/CMakeFiles/quasar.dir/linalg/completion.cc.o" "gcc" "src/CMakeFiles/quasar.dir/linalg/completion.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/quasar.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/quasar.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/pq_model.cc" "src/CMakeFiles/quasar.dir/linalg/pq_model.cc.o" "gcc" "src/CMakeFiles/quasar.dir/linalg/pq_model.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/CMakeFiles/quasar.dir/linalg/svd.cc.o" "gcc" "src/CMakeFiles/quasar.dir/linalg/svd.cc.o.d"
  "/root/repo/src/profiling/profiler.cc" "src/CMakeFiles/quasar.dir/profiling/profiler.cc.o" "gcc" "src/CMakeFiles/quasar.dir/profiling/profiler.cc.o.d"
  "/root/repo/src/sim/cluster.cc" "src/CMakeFiles/quasar.dir/sim/cluster.cc.o" "gcc" "src/CMakeFiles/quasar.dir/sim/cluster.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/quasar.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/quasar.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/platform.cc" "src/CMakeFiles/quasar.dir/sim/platform.cc.o" "gcc" "src/CMakeFiles/quasar.dir/sim/platform.cc.o.d"
  "/root/repo/src/sim/server.cc" "src/CMakeFiles/quasar.dir/sim/server.cc.o" "gcc" "src/CMakeFiles/quasar.dir/sim/server.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/quasar.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/quasar.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/CMakeFiles/quasar.dir/stats/rng.cc.o" "gcc" "src/CMakeFiles/quasar.dir/stats/rng.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/quasar.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/quasar.dir/stats/summary.cc.o.d"
  "/root/repo/src/stats/timeseries.cc" "src/CMakeFiles/quasar.dir/stats/timeseries.cc.o" "gcc" "src/CMakeFiles/quasar.dir/stats/timeseries.cc.o.d"
  "/root/repo/src/tracegen/arrivals.cc" "src/CMakeFiles/quasar.dir/tracegen/arrivals.cc.o" "gcc" "src/CMakeFiles/quasar.dir/tracegen/arrivals.cc.o.d"
  "/root/repo/src/tracegen/load_pattern.cc" "src/CMakeFiles/quasar.dir/tracegen/load_pattern.cc.o" "gcc" "src/CMakeFiles/quasar.dir/tracegen/load_pattern.cc.o.d"
  "/root/repo/src/tracegen/reservation_model.cc" "src/CMakeFiles/quasar.dir/tracegen/reservation_model.cc.o" "gcc" "src/CMakeFiles/quasar.dir/tracegen/reservation_model.cc.o.d"
  "/root/repo/src/workload/factory.cc" "src/CMakeFiles/quasar.dir/workload/factory.cc.o" "gcc" "src/CMakeFiles/quasar.dir/workload/factory.cc.o.d"
  "/root/repo/src/workload/queueing.cc" "src/CMakeFiles/quasar.dir/workload/queueing.cc.o" "gcc" "src/CMakeFiles/quasar.dir/workload/queueing.cc.o.d"
  "/root/repo/src/workload/scale_up_config.cc" "src/CMakeFiles/quasar.dir/workload/scale_up_config.cc.o" "gcc" "src/CMakeFiles/quasar.dir/workload/scale_up_config.cc.o.d"
  "/root/repo/src/workload/truth.cc" "src/CMakeFiles/quasar.dir/workload/truth.cc.o" "gcc" "src/CMakeFiles/quasar.dir/workload/truth.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/quasar.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/quasar.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
