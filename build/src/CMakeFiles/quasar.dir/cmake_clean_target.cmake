file(REMOVE_RECURSE
  "libquasar.a"
)
